package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
)

// End-to-end cluster tests: real shard servers behind httptest, a remote
// scatter-gather coordinator in front, and an in-process sharded
// coordinator over the same database, ring, and index options as the
// byte-identity reference. DESIGN.md §15's core promise — remote answers
// identical to in-process at the same shard count and placement — is
// pinned here for both kernels, for top-k, solo, and batch execution,
// and across replica failures.

var clusterIdxOpts = index.Options{D: 2, Samples: 24, Seed: 2}

// clusterDB builds a planted-module database: genes A, B, C correlated
// in every source plus one unique gene per source.
func clusterDB(t *testing.T, n int) (*gene.Database, *gene.Catalog) {
	t.Helper()
	rng := randgen.New(1)
	cat := gene.NewCatalog()
	idA, idB, idC := cat.Intern("A"), cat.Intern("B"), cat.Intern("C")
	db := gene.NewDatabase()
	for src := 0; src < n; src++ {
		m, err := gene.NewMatrix(src,
			[]gene.ID{idA, idB, idC, gene.ID(100 + src)},
			moduleColumns(rng, 18))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return db, cat
}

// moduleColumns draws four columns over a shared driver signal: three
// strongly (anti-)correlated module members and one noise column.
func moduleColumns(rng *randgen.Rand, l int) [][]float64 {
	driver := make([]float64, l)
	for i := range driver {
		driver[i] = rng.Gaussian(0, 1)
	}
	mk := func(coef, noise float64) []float64 {
		col := make([]float64, l)
		for i := range col {
			col[i] = coef*driver[i] + noise*rng.Gaussian(0, 1)
		}
		return col
	}
	return [][]float64{mk(1, 0.1), mk(0.9, 0.2), mk(-0.9, 0.2), mk(0, 1)}
}

type testCluster struct {
	topo   cluster.Topology
	ring   *cluster.Ring
	https  []*httptest.Server
	shards []*Server // shard-role servers, aligned with topo.Servers
	remote *cluster.Coordinator
	ref    *shard.Coordinator // in-process byte-identity reference
	reg    *obs.Registry      // coordinator metrics
	cat    *gene.Catalog
	db     *gene.Database
}

// newTestCluster boots nServers shard servers over a 16-source planted
// database, a remote coordinator in front of them, and the in-process
// reference coordinator with identical placement. wrap, when non-nil,
// interposes on server i's handler (fault injection); mod edits the
// coordinator options before dialing.
func newTestCluster(t *testing.T, nServers, replication int,
	wrap func(i int, h http.Handler) http.Handler,
	mod func(*cluster.CoordinatorOptions)) *testCluster {
	t.Helper()
	db, cat := clusterDB(t, 16)
	tc := &testCluster{
		topo: cluster.Topology{Servers: make([]string, nServers), NumShards: nServers, Replication: replication},
		ring: cluster.NewRing(nServers, 0),
		cat:  cat,
		db:   db,
		reg:  obs.NewRegistry(),
	}
	for i := 0; i < nServers; i++ {
		owned := tc.topo.ServerShards(i)
		localOf := make(map[int]int, len(owned))
		for l, g := range owned {
			localOf[g] = l
		}
		fdb := gene.NewDatabase()
		for _, m := range db.Matrices() {
			if _, ok := localOf[tc.ring.Place(m.Source)]; ok {
				if err := fdb.Add(m); err != nil {
					t.Fatal(err)
				}
			}
		}
		coord, err := shard.Build(fdb, shard.Options{
			NumShards: len(owned),
			PlaceFunc: func(src int) int { return localOf[tc.ring.Place(src)] },
			Index:     clusterIdxOpts,
		})
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srv := NewShardServer(coord, cat, &ShardRole{
			NumShards: tc.topo.NumShards, Shards: owned, Ring: tc.ring,
		})
		var h http.Handler = srv
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		tc.topo.Servers[i] = ts.URL
		tc.https = append(tc.https, ts)
		tc.shards = append(tc.shards, srv)
	}

	opts := cluster.CoordinatorOptions{
		Topology:   tc.topo,
		Client:     &cluster.Client{Timeout: 30 * time.Second, Retries: 1, Backoff: time.Millisecond},
		Registry:   tc.reg,
		HedgeAfter: -1,                   // deterministic: failover on error only
		FloorEvery: 2 * time.Millisecond, // exercise cross-shard floor pushes
	}
	if mod != nil {
		mod(&opts)
	}
	remote, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	tc.remote = remote

	ref, err := shard.Build(db, shard.Options{
		NumShards: tc.topo.NumShards,
		PlaceFunc: tc.ring.Place,
		Index:     clusterIdxOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.ref = ref
	return tc
}

// queryMatrix builds an ad-hoc query matrix from source src's module
// columns (A, B, C).
func (tc *testCluster) queryMatrix(t *testing.T, src int) *gene.Matrix {
	t.Helper()
	m := tc.db.BySource(src)
	q, err := gene.NewMatrix(-1, m.Genes()[:3], [][]float64{m.Col(0), m.Col(1), m.Col(2)})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// queryGraph builds an explicit probabilistic pattern over A, B, C.
func (tc *testCluster) queryGraph() *grn.Graph {
	m := tc.db.BySource(0)
	g := grn.NewGraph(m.Genes()[:3])
	g.SetEdge(0, 1, 0.9)
	g.SetEdge(0, 2, 0.85)
	g.SetEdge(1, 2, 0.8)
	return g
}

func clusterParamsFor(analytic bool) core.Params {
	p := core.Params{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: analytic}
	if !analytic {
		p.Samples = 24
	}
	return p
}

func mustAnswers(t *testing.T, what string, as []core.Answer, err error) []core.Answer {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if len(as) == 0 {
		t.Fatalf("%s: no answers", what)
	}
	return as
}

func TestClusterByteIdentityMatrix(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	ctx := context.Background()
	for _, kernel := range []struct {
		name     string
		analytic bool
	}{{"analytic", true}, {"montecarlo", false}} {
		t.Run(kernel.name, func(t *testing.T) {
			params := clusterParamsFor(kernel.analytic)
			q := tc.queryMatrix(t, 3)
			got, _, gerr := tc.remote.QueryContext(ctx, q, params)
			want, _, werr := tc.ref.QueryContext(ctx, q, params)
			mustAnswers(t, "remote", got, gerr)
			mustAnswers(t, "in-process", want, werr)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("remote answers diverge from in-process:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestClusterByteIdentityGraph(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	ctx := context.Background()
	q := tc.queryGraph()
	params := clusterParamsFor(false)
	got, _, gerr := tc.remote.QueryGraphContext(ctx, q, params)
	want, _, werr := tc.ref.QueryGraphContext(ctx, q, params)
	mustAnswers(t, "remote", got, gerr)
	mustAnswers(t, "in-process", want, werr)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote graph answers diverge:\n got %+v\nwant %+v", got, want)
	}
}

func TestClusterByteIdentityTopK(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	ctx := context.Background()
	for _, kernel := range []struct {
		name     string
		analytic bool
	}{{"analytic", true}, {"montecarlo", false}} {
		t.Run(kernel.name, func(t *testing.T) {
			params := clusterParamsFor(kernel.analytic)
			q := tc.queryMatrix(t, 5)
			got, _, gerr := tc.remote.QueryTopKContext(ctx, q, params, 3)
			want, _, werr := tc.ref.QueryTopKContext(ctx, q, params, 3)
			mustAnswers(t, "remote", got, gerr)
			mustAnswers(t, "in-process", want, werr)
			if len(got) != 3 {
				t.Errorf("top-3 returned %d answers", len(got))
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("remote top-k diverges:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestClusterByteIdentitySolo pins the single-server degenerate case:
// the coordinator ships the whole query untouched (Solo) and the shard
// server runs the full local engine path.
func TestClusterByteIdentitySolo(t *testing.T) {
	tc := newTestCluster(t, 1, 1, nil, nil)
	ctx := context.Background()
	params := clusterParamsFor(false)
	q := tc.queryMatrix(t, 2)

	got, _, gerr := tc.remote.QueryContext(ctx, q, params)
	want, _, werr := tc.ref.QueryContext(ctx, q, params)
	mustAnswers(t, "remote solo", got, gerr)
	mustAnswers(t, "in-process", want, werr)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("solo answers diverge:\n got %+v\nwant %+v", got, want)
	}

	gotK, _, gerr := tc.remote.QueryTopKContext(ctx, q, params, 2)
	wantK, _, werr := tc.ref.QueryTopKContext(ctx, q, params, 2)
	mustAnswers(t, "remote solo top-k", gotK, gerr)
	mustAnswers(t, "in-process top-k", wantK, werr)
	if !reflect.DeepEqual(gotK, wantK) {
		t.Errorf("solo top-k diverges:\n got %+v\nwant %+v", gotK, wantK)
	}
}

func TestClusterByteIdentityBatch(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	ctx := context.Background()
	items := []core.BatchItem{
		{Matrix: tc.queryMatrix(t, 3), Params: clusterParamsFor(true)},
		{Graph: tc.queryGraph(), Params: clusterParamsFor(false), K: 2},
		{Matrix: tc.queryMatrix(t, 7), Params: clusterParamsFor(false), K: 3},
		{Params: clusterParamsFor(true)}, // no query: fails alone, not the batch
	}
	got, _ := tc.remote.QueryBatch(ctx, items, core.BatchOptions{})
	want, _ := tc.ref.QueryBatch(ctx, items, core.BatchOptions{})
	if len(got) != len(items) || len(want) != len(items) {
		t.Fatalf("result counts: remote %d, in-process %d", len(got), len(want))
	}
	for i := range items {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Errorf("item %d: err mismatch: remote %v, in-process %v", i, got[i].Err, want[i].Err)
			continue
		}
		if want[i].Err != nil {
			if !errors.Is(got[i].Err, core.ErrNoBatchQuery) {
				t.Errorf("item %d: remote err = %v, want ErrNoBatchQuery", i, got[i].Err)
			}
			continue
		}
		if !reflect.DeepEqual(got[i].Answers, want[i].Answers) {
			t.Errorf("item %d answers diverge:\n got %+v\nwant %+v", i, got[i].Answers, want[i].Answers)
		}
	}
}

// TestClusterReplicaFailover kills one shard server outright; every
// shard it hosted has a live replica, so answers are unchanged.
func TestClusterReplicaFailover(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	ctx := context.Background()
	params := clusterParamsFor(true)
	q := tc.queryMatrix(t, 3)
	want, _, werr := tc.remote.QueryContext(ctx, q, params)
	mustAnswers(t, "baseline", want, werr)

	tc.https[0].Close() // kill -9 equivalent: connections refused from here on
	tc.remote.RefreshHealth(ctx)

	got, _, err := tc.remote.QueryContext(ctx, q, params)
	mustAnswers(t, "after failover", got, err)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("failover changed the answer:\n got %+v\nwant %+v", got, want)
	}

	// Batch execution survives the same loss.
	res, _ := tc.remote.QueryBatch(ctx, []core.BatchItem{{Matrix: q, Params: params}}, core.BatchOptions{})
	if res[0].Err != nil {
		t.Fatalf("batch after failover: %v", res[0].Err)
	}
	if !reflect.DeepEqual(res[0].Answers, want) {
		t.Errorf("batch failover changed the answer:\n got %+v\nwant %+v", res[0].Answers, want)
	}
}

// TestClusterAllReplicasDown pins the documented partial-failure
// contract: when every replica of a shard is unreachable the query fails
// with ErrShardUnavailable rather than returning a silently partial
// answer set.
func TestClusterAllReplicasDown(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, func(o *cluster.CoordinatorOptions) {
		o.Client = &cluster.Client{Timeout: 5 * time.Second, Retries: -1, Backoff: time.Millisecond}
	})
	for _, ts := range tc.https {
		ts.Close()
	}
	_, _, err := tc.remote.QueryContext(context.Background(), tc.queryMatrix(t, 3), clusterParamsFor(true))
	if !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
}

// TestClusterFailoverOn5xx: a replica that answers 503 on every exec
// (overload, mid-restart) is failed over transparently.
func TestClusterFailoverOn5xx(t *testing.T) {
	tc := newTestCluster(t, 3, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/cluster/exec") {
				http.Error(w, `{"error":"shedding"}`, http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	}, func(o *cluster.CoordinatorOptions) {
		o.Client = &cluster.Client{Timeout: 30 * time.Second, Retries: -1, Backoff: time.Millisecond}
	})
	ctx := context.Background()
	params := clusterParamsFor(true)
	q := tc.queryMatrix(t, 3)
	got, _, err := tc.remote.QueryContext(ctx, q, params)
	mustAnswers(t, "remote", got, err)
	want, _, werr := tc.ref.QueryContext(ctx, q, params)
	mustAnswers(t, "in-process", want, werr)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("5xx failover changed the answer:\n got %+v\nwant %+v", got, want)
	}
}

// TestClusterHedgedReadWins: a replica that answers, but slowly, loses
// the race to a hedged attempt on the next replica — same answer, and
// the hedge-win counter moves.
func TestClusterHedgedReadWins(t *testing.T) {
	const stall = 400 * time.Millisecond
	tc := newTestCluster(t, 3, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/cluster/exec") {
				time.Sleep(stall)
			}
			h.ServeHTTP(w, r)
		})
	}, func(o *cluster.CoordinatorOptions) {
		o.HedgeAfter = 5 * time.Millisecond
	})
	ctx := context.Background()
	params := clusterParamsFor(true)
	q := tc.queryMatrix(t, 3)
	got, _, err := tc.remote.QueryContext(ctx, q, params)
	mustAnswers(t, "remote", got, err)
	want, _, werr := tc.ref.QueryContext(ctx, q, params)
	mustAnswers(t, "in-process", want, werr)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hedged read changed the answer:\n got %+v\nwant %+v", got, want)
	}
	if v := metricValue(t, tc.reg, "imgrn_rpc_hedge_wins_total"); v < 1 {
		t.Errorf("imgrn_rpc_hedge_wins_total = %v, want >= 1 (slow replica should lose the race)", v)
	}
}

// metricValue renders reg and returns the value of the first sample
// whose name (with labels) starts with prefix.
func metricValue(t *testing.T, reg *obs.Registry, prefix string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found", prefix)
	return 0
}

// TestClusterReplicatedMutations: adds route through the ring to every
// replica of the owning shard (and only those), stay byte-identical to
// the in-process coordinator afterwards, and the sentinel errors survive
// the network round trip.
func TestClusterReplicatedMutations(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	ctx := context.Background()

	const src = 200
	rng := randgen.New(7)
	m, err := gene.NewMatrix(src,
		[]gene.ID{tc.cat.Intern("A"), tc.cat.Intern("B"), tc.cat.Intern("C"), gene.ID(100 + src)},
		moduleColumns(rng, 18))
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.remote.AddMatrix(m); err != nil {
		t.Fatal(err)
	}
	if err := tc.ref.AddMatrix(m); err != nil {
		t.Fatal(err)
	}

	owning := map[int]bool{}
	for _, i := range tc.topo.Replicas(tc.ring.Place(src)) {
		owning[i] = true
	}
	if len(owning) != 2 {
		t.Fatalf("replicas = %v", owning)
	}
	for i, srv := range tc.shards {
		if has := srv.coord.Database().BySource(src) != nil; has != owning[i] {
			t.Errorf("server %d: holds source %d = %v, want %v", i, src, has, owning[i])
		}
	}

	// The new source is queryable and the remote answer still matches the
	// in-process coordinator that applied the same mutation.
	q, err := gene.NewMatrix(-1, m.Genes()[:3], [][]float64{m.Col(0), m.Col(1), m.Col(2)})
	if err != nil {
		t.Fatal(err)
	}
	params := clusterParamsFor(true)
	got, _, gerr := tc.remote.QueryContext(ctx, q, params)
	want, _, werr := tc.ref.QueryContext(ctx, q, params)
	mustAnswers(t, "remote", got, gerr)
	mustAnswers(t, "in-process", want, werr)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-mutation answers diverge:\n got %+v\nwant %+v", got, want)
	}
	found := false
	for _, a := range got {
		found = found || a.Source == src
	}
	if !found {
		t.Errorf("added source %d not among %d answers", src, len(got))
	}

	if err := tc.remote.AddMatrix(m); !errors.Is(err, shard.ErrSourceExists) {
		t.Errorf("duplicate add err = %v, want ErrSourceExists", err)
	}
	if err := tc.remote.RemoveMatrix(src); err != nil {
		t.Fatal(err)
	}
	for i, srv := range tc.shards {
		if srv.coord.Database().BySource(src) != nil {
			t.Errorf("server %d still holds source %d after remove", i, src)
		}
	}
	if err := tc.remote.RemoveMatrix(src); !errors.Is(err, shard.ErrSourceNotFound) {
		t.Errorf("double remove err = %v, want ErrSourceNotFound", err)
	}
}

// TestClusterShardServerRejections pins the explicit-rejection paths of
// the shard-role endpoints: protocol version skew, topology skew, and
// mutations whose placement disagrees with the server's own ring.
func TestClusterShardServerRejections(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	srv := tc.shards[0]

	rec := postJSON(t, srv, cluster.PathExec, cluster.ExecRequest{Proto: 99, Kind: cluster.KindGraph, NumShards: 3})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "protocol version") {
		t.Errorf("proto skew: status %d body %s", rec.Code, rec.Body)
	}

	rec = postJSON(t, srv, cluster.PathExec, cluster.ExecRequest{Proto: cluster.ProtoVersion, Kind: cluster.KindGraph, NumShards: 7})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "topology") {
		t.Errorf("topology skew: status %d body %s", rec.Code, rec.Body)
	}

	const src = 42
	wrong := (tc.ring.Place(src) + 1) % tc.topo.NumShards
	rec = postJSON(t, srv, cluster.PathMutate, cluster.MutateRequest{
		Proto: cluster.ProtoVersion, Op: "add", Source: src, Shard: wrong, NumShards: 3,
	})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "placement") {
		t.Errorf("placement skew: status %d body %s", rec.Code, rec.Body)
	}

	// Unknown query IDs on the floor endpoint are a no-op, not an error:
	// floors race query completion by design.
	rec = postJSON(t, srv, cluster.PathFloor, cluster.FloorRequest{
		Proto: cluster.ProtoVersion, QueryID: "nope", Floor: 0.9,
	})
	if rec.Code != http.StatusOK {
		t.Errorf("floor for dead query: status %d body %s", rec.Code, rec.Body)
	}
}

// TestClusterCoordinatorHTTP drives the coordinator-mode server's public
// HTTP surface end to end against live shard servers.
func TestClusterCoordinatorHTTP(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	srv, err := NewCluster(cluster.CoordinatorOptions{
		Topology:   tc.topo,
		Client:     &cluster.Client{Timeout: 30 * time.Second, Retries: 1, Backoff: time.Millisecond},
		HedgeAfter: -1,
	}, tc.cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Remote().Close() })
	local := NewSharded(tc.ref, tc.cat)

	m := tc.db.BySource(3)
	req := QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{m.Col(0), m.Col(1), m.Col(2)},
		Params:  ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true},
	}
	rec := postJSON(t, srv, "/query", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/query status %d body %s", rec.Code, rec.Body)
	}
	var got, want QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	lrec := postJSON(t, local, "/query", req)
	if lrec.Code != http.StatusOK {
		t.Fatalf("local /query status %d body %s", lrec.Code, lrec.Body)
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) == 0 || !reflect.DeepEqual(got.Answers, want.Answers) {
		t.Errorf("HTTP answers diverge:\n got %+v\nwant %+v", got.Answers, want.Answers)
	}

	// /query-batch streams NDJSON through the remote engine.
	brec := postJSON(t, srv, "/query-batch", BatchRequest{Queries: []BatchQueryJSON{
		{Genes: req.Genes, Columns: req.Columns, Params: req.Params},
		{Genes: req.Genes, Edges: []EdgeJSON{{S: 0, T: 1, Prob: 0.9}}, Params: req.Params},
	}})
	if brec.Code != http.StatusOK {
		t.Fatalf("/query-batch status %d body %s", brec.Code, brec.Body)
	}
	items, dones := 0, 0
	sc := bufio.NewScanner(brec.Body)
	for sc.Scan() {
		var line struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad batch frame %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Errorf("batch item error: %s", line.Error)
		}
		if line.Done {
			dones++
		} else {
			items++
		}
	}
	if items != 2 || dones != 1 {
		t.Errorf("batch stream: %d items, %d done frames", items, dones)
	}

	// /stats aggregates the health snapshot; the shards sum to the db.
	grec := httptest.NewRecorder()
	srv.ServeHTTP(grec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if grec.Code != http.StatusOK {
		t.Fatalf("/stats status %d body %s", grec.Code, grec.Body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(grec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, sh := range stats.Shards {
		sum += sh.Sources
	}
	if stats.Matrices != tc.db.Len() || stats.NumShards != 3 || sum != tc.db.Len() {
		t.Errorf("stats = %+v (sources sum %d, want %d)", stats, sum, tc.db.Len())
	}

	// /cluster/members reports a healthy roster; /cluster (structure
	// clustering) degrades explicitly in coordinator mode.
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, cluster.PathMembers, nil))
	var members MembersResponse
	if err := json.Unmarshal(mrec.Body.Bytes(), &members); err != nil {
		t.Fatal(err)
	}
	if len(members.Members) != 3 || members.Replication != 2 {
		t.Fatalf("members = %+v", members)
	}
	for _, mem := range members.Members {
		if !mem.Healthy {
			t.Errorf("member %d unhealthy: %+v", mem.Index, mem)
		}
	}
	crec := postJSON(t, srv, "/cluster", map[string]int{"k": 2})
	if crec.Code != http.StatusNotImplemented {
		t.Errorf("/cluster in coordinator mode: status %d, want 501", crec.Code)
	}
}

// TestClusterMetricsPreseeded: the cluster metric families are visible
// on first scrape — before any traffic — on both roles.
func TestClusterMetricsPreseeded(t *testing.T) {
	tc := newTestCluster(t, 3, 2, nil, nil)
	srv, err := NewCluster(cluster.CoordinatorOptions{
		Topology: tc.topo,
		Client:   &cluster.Client{Timeout: 30 * time.Second, Retries: 1, Backoff: time.Millisecond},
	}, tc.cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Remote().Close() })

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"imgrn_cluster_members ",
		"imgrn_cluster_members_healthy ",
		"imgrn_cluster_scatters_total ",
		"imgrn_cluster_partial_failures_total ",
		"imgrn_cluster_floor_updates_total ",
		"imgrn_cluster_rebalance_signals_total ",
		`imgrn_rpc_requests_total{outcome="ok"}`,
		`imgrn_rpc_requests_total{outcome="error"}`,
		`imgrn_rpc_requests_total{outcome="timeout"}`,
		"imgrn_rpc_retries_total ",
		"imgrn_rpc_hedges_total ",
		"imgrn_rpc_hedge_wins_total ",
		"imgrn_rpc_seconds_bucket",
		"imgrn_batch_requests_total ",
		`imgrn_requests_total{endpoint="query"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	tc.shards[0].ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body = rec.Body.String()
	for _, want := range []string{
		`imgrn_requests_total{endpoint="cluster-exec"}`,
		`imgrn_requests_total{endpoint="cluster-exec-batch"}`,
		`imgrn_requests_total{endpoint="cluster-mutate"}`,
		`imgrn_requests_total{endpoint="cluster-floor"}`,
		`imgrn_requests_total{endpoint="cluster-info"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("shard-server /metrics missing %q", want)
		}
	}
}
