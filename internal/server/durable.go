package server

import (
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/shard"
)

// Durable serving. NewDurable wraps a shard.Store: the read path is the
// ordinary scatter-gather coordinator, while POST /add-matrix and
// /remove-matrix route through the store so every acknowledged mutation
// is in the fsynced write-ahead log before the HTTP 200 leaves the
// server. Durable servers additionally expose the imgrn_wal_* and
// imgrn_snapshot_* metric families (refreshed from the store on every
// /metrics scrape, like the per-shard gauges) and a "durability" block
// in /stats.

// NewDurable returns a server over a durable store; see NewSharded for
// the shared behavior.
func NewDurable(store *shard.Store, cat *gene.Catalog) *Server {
	s := NewSharded(store.Coordinator, cat)
	s.store = store
	s.met.initDurable(s.Metrics)
	return s
}

// durableMetrics are scrape-refreshed gauges mirroring
// shard.DurableStats; registered only on durable servers so non-durable
// deployments don't expose dead families.
type durableMetrics struct {
	walAppends     *obs.Gauge
	walAppendBytes *obs.Gauge
	walFsyncs      *obs.Gauge
	walSegBytes    *obs.Gauge
	walReplayed    *obs.Gauge
	walTornBytes   *obs.Gauge
	snapGen        *obs.Gauge
	snapCount      *obs.Gauge
	snapFailures   *obs.Gauge
	snapLastMillis *obs.Gauge
	snapLastBytes  *obs.Gauge
	snapWarmBoot   *obs.Gauge
	snapBootMillis *obs.Gauge
}

func (m *serverMetrics) initDurable(r *obs.Registry) {
	d := &m.durable
	d.walAppends = r.Gauge("imgrn_wal_appends_total",
		"Mutation records appended to the write-ahead log since boot.")
	d.walAppendBytes = r.Gauge("imgrn_wal_append_bytes_total",
		"Payload bytes appended to the write-ahead log since boot.")
	d.walFsyncs = r.Gauge("imgrn_wal_fsyncs_total",
		"WAL fsyncs issued since boot (one per acknowledged mutation unless fsync is disabled).")
	d.walSegBytes = r.Gauge("imgrn_wal_segment_bytes",
		"Total size of the live WAL segments across shards; falls to 0 at each checkpoint.")
	d.walReplayed = r.Gauge("imgrn_wal_replayed_records",
		"WAL records replayed over the snapshot at the last boot.")
	d.walTornBytes = r.Gauge("imgrn_wal_torn_bytes",
		"Torn-tail bytes truncated from the WAL at the last boot.")
	d.snapGen = r.Gauge("imgrn_snapshot_generation",
		"Committed snapshot generation of the durable store.")
	d.snapCount = r.Gauge("imgrn_snapshot_checkpoints_total",
		"Checkpoints completed since boot.")
	d.snapFailures = r.Gauge("imgrn_snapshot_checkpoint_failures_total",
		"Checkpoint attempts that failed since boot (the mutations that triggered them remain durable).")
	d.snapLastMillis = r.Gauge("imgrn_snapshot_last_duration_ms",
		"Wall-clock duration of the most recent checkpoint in milliseconds.")
	d.snapLastBytes = r.Gauge("imgrn_snapshot_last_bytes",
		"Total snapshot bytes written by the most recent checkpoint.")
	d.snapWarmBoot = r.Gauge("imgrn_snapshot_warm_boot",
		"1 when this process warm-booted from snapshots, 0 when it built the index from scratch.")
	d.snapBootMillis = r.Gauge("imgrn_snapshot_boot_duration_ms",
		"Wall-clock duration of OpenDurable (snapshot load + WAL replay, or full build) in milliseconds.")
}

// observeDurable refreshes the durability gauges from the store; called
// on every /metrics scrape of a durable server.
func (m *serverMetrics) observeDurable(ds shard.DurableStats) {
	d := &m.durable
	d.walAppends.Set(int64(ds.WALAppends))
	d.walAppendBytes.Set(int64(ds.WALAppendBytes))
	d.walFsyncs.Set(int64(ds.WALFsyncs))
	d.walSegBytes.Set(ds.WALSegmentBytes)
	d.walReplayed.Set(int64(ds.ReplayedRecords))
	d.walTornBytes.Set(ds.TornBytes)
	d.snapGen.Set(int64(ds.Gen))
	d.snapCount.Set(int64(ds.Checkpoints))
	d.snapFailures.Set(int64(ds.CheckpointFailures))
	d.snapLastMillis.Set(ds.LastCheckpointDuration.Milliseconds())
	d.snapLastBytes.Set(ds.LastCheckpointBytes)
	if ds.WarmBoot {
		d.snapWarmBoot.Set(1)
	} else {
		d.snapWarmBoot.Set(0)
	}
	d.snapBootMillis.Set(ds.BootDuration.Milliseconds())
}

// DurabilityStatsJSON is the /stats "durability" block of a durable
// server: boot provenance plus WAL and checkpoint counters.
type DurabilityStatsJSON struct {
	Dir                string `json:"dir"`
	Generation         uint64 `json:"generation"`
	WarmBoot           bool   `json:"warmBoot"`
	BootMillis         int64  `json:"bootMillis"`
	ReplayedRecords    int    `json:"replayedRecords"`
	TornBytes          int64  `json:"tornBytes"`
	WALAppends         uint64 `json:"walAppends"`
	WALSegmentBytes    int64  `json:"walSegmentBytes"`
	Checkpoints        uint64 `json:"checkpoints"`
	CheckpointFailures uint64 `json:"checkpointFailures"`
	LastCheckpointErr  string `json:"lastCheckpointError,omitempty"`
	LastCheckpointMs   int64  `json:"lastCheckpointMillis"`
	LastCheckpointSize int64  `json:"lastCheckpointBytes"`
}

// durabilityStats builds the /stats block; nil for non-durable servers
// (the field is omitted from the JSON).
func (s *Server) durabilityStats() *DurabilityStatsJSON {
	if s.store == nil {
		return nil
	}
	ds := s.store.DurableStats()
	return &DurabilityStatsJSON{
		Dir:                s.store.Dir(),
		Generation:         ds.Gen,
		WarmBoot:           ds.WarmBoot,
		BootMillis:         ds.BootDuration.Milliseconds(),
		ReplayedRecords:    ds.ReplayedRecords,
		TornBytes:          ds.TornBytes,
		WALAppends:         ds.WALAppends,
		WALSegmentBytes:    ds.WALSegmentBytes,
		Checkpoints:        ds.Checkpoints,
		CheckpointFailures: ds.CheckpointFailures,
		LastCheckpointErr:  ds.LastCheckpointError,
		LastCheckpointMs:   ds.LastCheckpointDuration.Milliseconds(),
		LastCheckpointSize: ds.LastCheckpointBytes,
	}
}

// addMatrix routes a mutation through the durable store when one is
// attached (apply → WAL fsync → ack) and directly to the coordinator
// otherwise.
func (s *Server) addMatrix(m *gene.Matrix) error {
	if s.store != nil {
		return s.store.AddMatrix(m)
	}
	return s.eng.AddMatrix(m)
}

func (s *Server) removeMatrix(source int) error {
	if s.store != nil {
		return s.store.RemoveMatrix(source)
	}
	return s.eng.RemoveMatrix(source)
}
