package server

import (
	"errors"
	"fmt"
	"net/http"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/shard"
)

// Mutation endpoints: POST /add-matrix indexes a new data source online,
// POST /remove-matrix drops one. Requests are bounded by MaxBodyBytes
// like every other POST body, count toward MaxConcurrent (indexing a
// matrix embeds it, which is real work), and are tallied in the
// imgrn_mutations_total metric by operation. A mutation write-locks only
// the shard its source is placed on, so queries against the other shards
// proceed concurrently.

// AddMatrixRequest is the /add-matrix payload: a full feature matrix for
// a new data source.
type AddMatrixRequest struct {
	// Source is the new data source ID; must be non-negative and not yet
	// indexed.
	Source int `json:"source"`
	// Genes labels the columns, by catalog name or numeric ID.
	Genes []string `json:"genes"`
	// Columns[i] is the feature vector of Genes[i]; all must share length.
	Columns [][]float64 `json:"columns"`
}

// MutateResponse reports a completed mutation.
type MutateResponse struct {
	Status string `json:"status"`
	Source int    `json:"source"`
	// Shard is the shard the source is (or was) placed on.
	Shard int `json:"shard"`
	// Matrices is the database size after the mutation.
	Matrices int `json:"matrices"`
}

func (s *Server) handleAddMatrix(w http.ResponseWriter, r *http.Request) {
	var req AddMatrixRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source < 0 {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("source %d must be non-negative", req.Source))
		return
	}
	ids, err := s.resolveGenes(req.Genes)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Columns) != len(ids) {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("%d gene names for %d columns", len(ids), len(req.Columns)))
		return
	}
	m, err := gene.NewMatrix(req.Source, ids, req.Columns)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	if err := s.addMatrix(m); err != nil {
		if errors.Is(err, shard.ErrSourceExists) {
			s.error(w, http.StatusConflict, err.Error())
			return
		}
		if errors.Is(err, shard.ErrMutationTooLarge) {
			s.error(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	s.met.requests.With("add-matrix").Inc()
	s.met.mutations.With("add").Inc()
	sh, _ := s.eng.Placement(req.Source)
	writeJSON(w, http.StatusOK, MutateResponse{
		Status: "ok", Source: req.Source, Shard: sh,
		Matrices: s.eng.Matrices(),
	})
}

// RemoveMatrixRequest is the /remove-matrix payload.
type RemoveMatrixRequest struct {
	// Source is the data source ID to drop.
	Source int `json:"source"`
}

func (s *Server) handleRemoveMatrix(w http.ResponseWriter, r *http.Request) {
	var req RemoveMatrixRequest
	if !s.decode(w, r, &req) {
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	sh, _ := s.eng.Placement(req.Source)
	if err := s.removeMatrix(req.Source); err != nil {
		if errors.Is(err, shard.ErrSourceNotFound) {
			s.error(w, http.StatusNotFound, err.Error())
			return
		}
		s.error(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.met.requests.With("remove-matrix").Inc()
	s.met.mutations.With("remove").Inc()
	writeJSON(w, http.StatusOK, MutateResponse{
		Status: "ok", Source: req.Source, Shard: sh,
		Matrices: s.eng.Matrices(),
	})
}
