package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
)

func getRequest(t *testing.T, path string) (*http.Request, *httptest.ResponseRecorder) {
	t.Helper()
	return httptest.NewRequest(http.MethodGet, path, nil), httptest.NewRecorder()
}

// addBody builds a valid /add-matrix payload carrying the fixture's
// planted module so the new source matches module queries.
func addBody(t *testing.T, source int) AddMatrixRequest {
	t.Helper()
	rng := randgen.New(uint64(source) + 400)
	l := 18
	driver := make([]float64, l)
	for i := range driver {
		driver[i] = rng.Gaussian(0, 1)
	}
	mk := func(coef, noise float64) []float64 {
		col := make([]float64, l)
		for i := range col {
			col[i] = coef*driver[i] + noise*rng.Gaussian(0, 1)
		}
		return col
	}
	return AddMatrixRequest{
		Source:  source,
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{mk(1, 0.1), mk(0.9, 0.2), mk(-0.9, 0.2)},
	}
}

func TestAddRemoveMatrixEndpoints(t *testing.T) {
	s, _, db := fixture(t)
	n := db.Len()

	// Add a new source; it becomes queryable immediately.
	rec := postJSON(t, s, "/add-matrix", addBody(t, 50))
	if rec.Code != http.StatusOK {
		t.Fatalf("add status = %d body %s", rec.Code, rec.Body)
	}
	var resp MutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Source != 50 || resp.Matrices != n+1 {
		t.Errorf("add response = %+v", resp)
	}
	m := db.BySource(3)
	qrec := postJSON(t, s, "/query", QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{m.Col(0), m.Col(1), m.Col(2)},
		Params:  ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true},
	})
	if qrec.Code != http.StatusOK {
		t.Fatalf("query status = %d body %s", qrec.Code, qrec.Body)
	}
	var qresp QueryResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range qresp.Answers {
		if a.Source == 50 {
			found = true
		}
	}
	if !found {
		t.Error("added source not matched by a module query")
	}

	// Duplicate source: 409.
	if rec := postJSON(t, s, "/add-matrix", addBody(t, 50)); rec.Code != http.StatusConflict {
		t.Errorf("duplicate add status = %d, want 409", rec.Code)
	}

	// Remove it again.
	rec = postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: 50})
	if rec.Code != http.StatusOK {
		t.Fatalf("remove status = %d body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Matrices != n {
		t.Errorf("matrices after remove = %d, want %d", resp.Matrices, n)
	}
	// Removing an absent source: 404.
	if rec := postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: 50}); rec.Code != http.StatusNotFound {
		t.Errorf("absent remove status = %d, want 404", rec.Code)
	}
}

func TestAddMatrixValidation(t *testing.T) {
	s, _, _ := fixture(t)
	// Negative source.
	body := addBody(t, 51)
	body.Source = -1
	if rec := postJSON(t, s, "/add-matrix", body); rec.Code != http.StatusBadRequest {
		t.Errorf("negative source status = %d, want 400", rec.Code)
	}
	// Gene/column count mismatch.
	body = addBody(t, 51)
	body.Columns = body.Columns[:2]
	if rec := postJSON(t, s, "/add-matrix", body); rec.Code != http.StatusBadRequest {
		t.Errorf("column mismatch status = %d, want 400", rec.Code)
	}
	// Unknown gene name.
	body = addBody(t, 51)
	body.Genes = []string{"A", "B", "nosuch"}
	if rec := postJSON(t, s, "/add-matrix", body); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown gene status = %d, want 400", rec.Code)
	}
	// Ragged columns.
	body = addBody(t, 51)
	body.Columns[1] = body.Columns[1][:5]
	if rec := postJSON(t, s, "/add-matrix", body); rec.Code != http.StatusBadRequest {
		t.Errorf("ragged columns status = %d, want 400", rec.Code)
	}
	// GET is not allowed.
	req, rec := getRequest(t, "/add-matrix")
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /add-matrix status = %d, want 405", rec.Code)
	}
	// Bodies over MaxBodyBytes are rejected.
	s.MaxBodyBytes = 64
	if rec := postJSON(t, s, "/add-matrix", addBody(t, 52)); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized body status = %d, want 400", rec.Code)
	}
}

func TestMutationMetrics(t *testing.T) {
	s, _, _ := fixture(t)
	samples := parseExposition(t, scrape(t, s))
	// Pre-seeded at zero before any mutation.
	for _, series := range []string{`imgrn_mutations_total{op="add"}`, `imgrn_mutations_total{op="remove"}`} {
		if v, ok := samples[series]; !ok || v != 0 {
			t.Errorf("pre-seeded %s = %v, %v", series, v, ok)
		}
	}
	if rec := postJSON(t, s, "/add-matrix", addBody(t, 60)); rec.Code != http.StatusOK {
		t.Fatalf("add status = %d", rec.Code)
	}
	if rec := postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: 60}); rec.Code != http.StatusOK {
		t.Fatalf("remove status = %d", rec.Code)
	}
	// A failed mutation is not counted.
	if rec := postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: 60}); rec.Code != http.StatusNotFound {
		t.Fatalf("absent remove status = %d", rec.Code)
	}
	samples = parseExposition(t, scrape(t, s))
	if v := samples[`imgrn_mutations_total{op="add"}`]; v != 1 {
		t.Errorf("mutations{add} = %v, want 1", v)
	}
	if v := samples[`imgrn_mutations_total{op="remove"}`]; v != 1 {
		t.Errorf("mutations{remove} = %v, want 1", v)
	}
	if v := samples[`imgrn_requests_total{endpoint="add-matrix"}`]; v != 1 {
		t.Errorf("requests{add-matrix} = %v, want 1", v)
	}
	if v := samples[`imgrn_shard_mutations{shard="0"}`]; v != 2 {
		t.Errorf("shard_mutations{0} = %v, want 2", v)
	}
}

// shardedFixture builds the fixture database as a P-shard coordinator.
func shardedFixture(t *testing.T, p int) (*Server, *gene.Database) {
	t.Helper()
	_, cat, db := fixture(t)
	coord, err := shard.Build(db, shard.Options{
		NumShards: p,
		Index:     index.Options{D: 2, Samples: 24, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewSharded(coord, cat), db
}

// TestShardedServer: a sharded server answers queries, routes mutations,
// and surfaces per-shard counters in /stats and /metrics.
func TestShardedServer(t *testing.T) {
	s, db := shardedFixture(t, 3)

	m := db.BySource(3)
	qreq := QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{m.Col(0), m.Col(1), m.Col(2)},
		Params:  ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true},
	}
	rec := postJSON(t, s, "/query", qreq)
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded query status = %d body %s", rec.Code, rec.Body)
	}
	var qresp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if len(qresp.Answers) < 10 {
		t.Errorf("sharded answers = %d, want most of the 12 sources", len(qresp.Answers))
	}

	// Mutations round-robin across shards; the response names the shard.
	rec = postJSON(t, s, "/add-matrix", addBody(t, 70))
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded add status = %d body %s", rec.Code, rec.Body)
	}
	var mresp MutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mresp); err != nil {
		t.Fatal(err)
	}
	if mresp.Shard != 12%3 {
		t.Errorf("source 70 placed on shard %d, want %d", mresp.Shard, 12%3)
	}

	// /stats reports the shard breakdown.
	req, srec := getRequest(t, "/stats")
	s.ServeHTTP(srec, req)
	if srec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", srec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumShards != 3 || len(stats.Shards) != 3 {
		t.Fatalf("stats shards = %d/%d, want 3", stats.NumShards, len(stats.Shards))
	}
	sources, queries, mutations := 0, uint64(0), uint64(0)
	for _, sh := range stats.Shards {
		sources += sh.Sources
		queries += sh.Queries
		mutations += sh.Mutations
	}
	if sources != 13 {
		t.Errorf("per-shard sources sum to %d, want 13", sources)
	}
	if queries != 3 {
		t.Errorf("per-shard queries sum to %d, want 3 (one scatter over 3 shards)", queries)
	}
	if mutations != 1 {
		t.Errorf("per-shard mutations sum to %d, want 1", mutations)
	}

	// /metrics carries one series per shard, tracking the same counters.
	samples := parseExposition(t, scrape(t, s))
	var gaugeSources, gaugeQueries float64
	for shardLabel := 0; shardLabel < 3; shardLabel++ {
		label := `{shard="` + string(rune('0'+shardLabel)) + `"}`
		v, ok := samples["imgrn_shard_sources"+label]
		if !ok {
			t.Fatalf("imgrn_shard_sources%s missing", label)
		}
		gaugeSources += v
		gaugeQueries += samples["imgrn_shard_queries"+label]
	}
	if int(gaugeSources) != 13 {
		t.Errorf("shard_sources gauges sum to %v, want 13", gaugeSources)
	}
	if int(gaugeQueries) != 3 {
		t.Errorf("shard_queries gauges sum to %v, want 3", gaugeQueries)
	}
}
