package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
)

// durableFixture builds a durable server in dir over the standard
// planted-module database.
func durableFixture(t *testing.T, dir string, db *gene.Database) (*Server, *shard.Store) {
	t.Helper()
	st, err := shard.OpenDurable(db, shard.Options{
		NumShards: 2,
		Index:     index.Options{D: 2, Samples: 24, Seed: 2},
	}, shard.DurableOptions{Dir: dir, DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewDurable(st, nil), st
}

func testDB(t *testing.T, n int) *gene.Database {
	t.Helper()
	rng := randgen.New(1)
	db := gene.NewDatabase()
	for src := 0; src < n; src++ {
		l := 18
		cols := make([][]float64, 3)
		for j := range cols {
			col := make([]float64, l)
			for i := range col {
				col[i] = rng.Gaussian(0, 1)
			}
			cols[j] = col
		}
		m, err := gene.NewMatrix(src, []gene.ID{1, 2, gene.ID(100 + src)}, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestDurableServerMutationSurvivesRestart: a mutation acknowledged over
// HTTP must be present after the server's store is reopened — the HTTP
// 200 is the durability boundary.
func TestDurableServerMutationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, st := durableFixture(t, dir, testDB(t, 6))

	cols := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8, 1, 2},
		{2, 1, 4, 3, 6, 5, 8, 7, 2, 1, 4, 3, 6, 5, 8, 7, 2, 1},
	}
	rec := postJSON(t, s, "/add-matrix", AddMatrixRequest{
		Source: 99, Genes: []string{"1", "2"}, Columns: cols,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/add-matrix = %d: %s", rec.Code, rec.Body)
	}
	rec = postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("/remove-matrix = %d: %s", rec.Code, rec.Body)
	}
	// Simulated kill -9: abandon the store without Close — no checkpoint,
	// no rotation; the acked records are already in the WAL file.
	_ = st

	st2, err := shard.OpenDurable(nil, shard.Options{Index: index.Options{D: 2, Samples: 24, Seed: 2}},
		shard.DurableOptions{Dir: dir, DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Placement(99); !ok {
		t.Error("acked /add-matrix lost across restart")
	}
	if _, ok := st2.Placement(3); ok {
		t.Error("acked /remove-matrix lost across restart")
	}
	ds := st2.DurableStats()
	if !ds.WarmBoot || ds.ReplayedRecords != 2 {
		t.Errorf("recovery stats = %+v, want warm boot with 2 replayed records", ds)
	}
}

// TestDurableServerStatsAndMetrics: the durability block appears in
// /stats and the imgrn_wal_* / imgrn_snapshot_* families in /metrics,
// tracking the store's counters.
func TestDurableServerStatsAndMetrics(t *testing.T) {
	s, st := durableFixture(t, t.TempDir(), testDB(t, 6))
	defer st.Close()

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil {
		t.Fatal("/stats durability block missing on durable server")
	}
	if stats.Durability.Generation != 1 || stats.Durability.WarmBoot {
		t.Errorf("durability block = %+v, want cold boot at gen 1", stats.Durability)
	}

	rec2 := postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: 1})
	if rec2.Code != http.StatusOK {
		t.Fatalf("/remove-matrix = %d: %s", rec2.Code, rec2.Body)
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"imgrn_wal_appends_total 1",
		"imgrn_snapshot_generation 1",
		"imgrn_snapshot_warm_boot 0",
		"imgrn_wal_fsyncs_total",
		"imgrn_snapshot_checkpoints_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "imgrn_wal_segment_bytes ") ||
		strings.Contains(body, "imgrn_wal_segment_bytes 0\n") {
		t.Errorf("/metrics: live WAL bytes should be nonzero after a mutation:\n%s",
			grepLines(body, "imgrn_wal_segment_bytes"))
	}
}

// TestNonDurableServerOmitsDurability: the plain server exposes neither
// the /stats block nor the WAL metric families.
func TestNonDurableServerOmitsDurability(t *testing.T) {
	s, _, _ := fixture(t)
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "durability") {
		t.Error("/stats of non-durable server carries a durability block")
	}
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "imgrn_wal_") {
		t.Error("/metrics of non-durable server exposes imgrn_wal_* families")
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
