package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
)

// Shard-role serving (DESIGN.md §15). A shard server is an ordinary
// server — every public endpoint keeps working against its local shards —
// that additionally mounts the /cluster/* execution endpoints a remote
// cluster.Coordinator scatters to. The contract is byte-identity: the
// coordinator ships the resolved plan and the GLOBAL shard index, the
// server derives SeedFrom(Seed, global) itself and executes exactly the
// per-shard leg of the in-process scatter, so the merged answer depends
// only on placement and params — never on which replica served the leg.

// ShardRole describes the slice of the global partition this server
// hosts: the global shard count P, the global indexes of the hosted
// shards (order = local shard index on the underlying coordinator), and
// the placement ring every member of the cluster shares.
type ShardRole struct {
	// NumShards is the GLOBAL partition count P. Requests carrying a
	// different count are rejected: a misconfigured cluster must fail
	// loudly, not return wrong-seeded answers.
	NumShards int
	// Shards lists the hosted global shard indexes; Shards[local] is the
	// global index of the coordinator's local shard `local`.
	Shards []int
	// Ring is the cluster's consistent-hash placement ring; mutations
	// re-derive their placement on it and reject disagreement.
	Ring *cluster.Ring
}

// localOf maps a global shard index to its local index, -1 if not hosted.
func (role *ShardRole) localOf(global int) int {
	for local, g := range role.Shards {
		if g == global {
			return local
		}
	}
	return -1
}

// floorRegistry tracks the live top-k sinks of in-flight /cluster/exec
// queries so /cluster/floor pushes can raise their floors mid-query.
// Keyed by coordinator query ID; one server may run several shards of
// the same query concurrently, hence the slice.
type floorRegistry struct {
	mu    sync.Mutex
	sinks map[string][]*core.TopKSink
}

func (f *floorRegistry) register(qid string, sink *core.TopKSink) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sinks == nil {
		f.sinks = make(map[string][]*core.TopKSink)
	}
	f.sinks[qid] = append(f.sinks[qid], sink)
}

func (f *floorRegistry) deregister(qid string, sink *core.TopKSink) {
	f.mu.Lock()
	defer f.mu.Unlock()
	live := f.sinks[qid][:0]
	for _, s := range f.sinks[qid] {
		if s != sink {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		delete(f.sinks, qid)
	} else {
		f.sinks[qid] = live
	}
}

// raise lifts every live sink of qid to floor and reports how many it
// reached. A finished (deregistered) query acks trivially with 0.
func (f *floorRegistry) raise(qid string, floor float64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.sinks[qid] {
		s.RaiseFloor(floor)
	}
	return len(f.sinks[qid])
}

// NewShardServer returns a shard-role server: NewSharded plus the
// /cluster/* endpoints. coord must host exactly the shards role.Shards
// names, placed by role.Ring (see cmd/imgrn-server for the boot wiring).
func NewShardServer(coord *shard.Coordinator, cat *gene.Catalog, role *ShardRole) *Server {
	s := NewSharded(coord, cat)
	s.enableShardRole(role)
	return s
}

// NewDurableShardServer is NewShardServer over a durable store: the
// /cluster/mutate leg routes through the store's write-ahead log, so a
// replicated mutation is fsynced on every replica before the coordinator
// sees all acks.
func NewDurableShardServer(store *shard.Store, cat *gene.Catalog, role *ShardRole) *Server {
	s := NewDurable(store, cat)
	s.enableShardRole(role)
	return s
}

func (s *Server) enableShardRole(role *ShardRole) {
	s.role = role
	s.mux.HandleFunc(cluster.PathExec, s.handleClusterExec)
	s.mux.HandleFunc(cluster.PathExecBatch, s.handleClusterExecBatch)
	s.mux.HandleFunc(cluster.PathMutate, s.handleClusterMutate)
	s.mux.HandleFunc(cluster.PathFloor, s.handleClusterFloor)
	s.mux.HandleFunc(cluster.PathInfo, s.handleClusterInfo)
	// Pre-seed the new endpoint series (PR 2 convention: every series
	// that can appear exists from the first scrape).
	for _, ep := range []string{"cluster-exec", "cluster-exec-batch", "cluster-mutate", "cluster-floor", "cluster-info"} {
		s.met.requests.With(ep)
	}
}

// checkEnvelope validates the shared envelope fields (protocol version,
// topology agreement) and answers the request itself on failure.
func (s *Server) checkEnvelope(w http.ResponseWriter, proto, numShards int) bool {
	if proto != cluster.ProtoVersion {
		// The "protocol version" text is load-bearing: the client maps it
		// back to cluster.ErrProtoVersion.
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("protocol version mismatch: request speaks %d, this server speaks %d", proto, cluster.ProtoVersion))
		return false
	}
	if numShards != s.role.NumShards {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("topology mismatch: request partitions into %d shards, this server into %d", numShards, s.role.NumShards))
		return false
	}
	return true
}

// clusterParams rebuilds validated core.Params from the wire subset plus
// the coordinator's encoded plan.
func clusterParams(wp cluster.WireParams, rawPlan json.RawMessage, tr *obs.Tracer) (core.Params, error) {
	p := wp.Params()
	p.Trace = tr
	if len(rawPlan) > 0 {
		pl, err := plan.DecodeWire(rawPlan)
		if err != nil {
			return p, err
		}
		p.Plan = pl
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// clusterQuery materializes the query payload of an envelope: the query
// matrix (KindMatrix — inferred server-side at the base seed) or the
// explicit pattern (KindGraph).
func clusterQuery(kind string, genes []int32, columns [][]float64, edges []cluster.WireEdge) (*gene.Matrix, *grn.Graph, error) {
	ids := make([]gene.ID, len(genes))
	for i, g := range genes {
		ids[i] = gene.ID(g)
	}
	switch kind {
	case cluster.KindMatrix:
		mq, err := gene.NewMatrix(-1, ids, columns)
		return mq, nil, err
	case cluster.KindGraph:
		q := grn.NewGraph(ids)
		for _, e := range edges {
			if e.S < 0 || e.S >= len(ids) || e.T < 0 || e.T >= len(ids) || e.S == e.T {
				return nil, nil, fmt.Errorf("bad edge (%d,%d)", e.S, e.T)
			}
			q.SetEdge(e.S, e.T, e.Prob)
		}
		return nil, q, nil
	}
	return nil, nil, fmt.Errorf("unknown query kind %q", kind)
}

// ndjson prepares a streaming NDJSON response. Frames after the header
// has been sent cannot change the status code, so every post-header
// failure travels as an Error frame.
type ndjsonWriter struct {
	mu    sync.Mutex
	enc   *json.Encoder
	flush http.Flusher
}

func newNDJSON(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	out := &ndjsonWriter{enc: json.NewEncoder(w)}
	if f, ok := w.(http.Flusher); ok {
		out.flush = f
	}
	return out
}

func (n *ndjsonWriter) frame(v any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.enc.Encode(v)
	if n.flush != nil {
		n.flush.Flush()
	}
}

func (s *Server) handleClusterExec(w http.ResponseWriter, r *http.Request) {
	var req cluster.ExecRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.checkEnvelope(w, req.Proto, req.NumShards) {
		return
	}
	local := 0
	if !req.Solo {
		if local = s.role.localOf(req.Shard); local < 0 {
			s.error(w, http.StatusBadRequest,
				fmt.Sprintf("global shard %d is not hosted here (serving %v)", req.Shard, s.role.Shards))
			return
		}
	}
	tr := obs.NewTracer()
	params, err := clusterParams(req.Params, req.Plan, tr)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	mq, q, err := clusterQuery(req.Kind, req.Genes, req.Columns, req.Edges)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	out := newNDJSON(w)

	if req.Solo {
		// P=1 degenerate case: the caller's params run untouched through
		// the full local engine — the same sequential stream the unsharded
		// engine uses, so solo deployments are byte-identical to Open().
		var answers []core.Answer
		var st core.Stats
		if mq != nil {
			answers, st, err = s.coord.QueryContext(ctx, mq, params)
		} else {
			answers, st, err = s.coord.QueryGraphContext(ctx, q, params)
		}
		if err != nil {
			out.frame(cluster.ExecFrame{Error: err.Error()})
			return
		}
		s.observeQuery("cluster-exec", st, tr)
		done := cluster.ExecDone{Shard: 0, Answers: cluster.AnswersToWire(answers), Stats: cluster.StatsToWire(st)}
		out.frame(cluster.ExecFrame{Done: &done})
		return
	}

	// Scatter leg: infer at the base seed (matrix queries), then execute
	// the hosted shard with the per-GLOBAL-shard derived seed — exactly
	// the rewrite the in-process scatter applies.
	var infer *cluster.WireStats
	if mq != nil {
		var ist core.Stats
		q, ist, err = s.coord.InferGraphContext(ctx, mq, params)
		if err != nil {
			out.frame(cluster.ExecFrame{Error: err.Error()})
			return
		}
		ws := cluster.StatsToWire(ist)
		infer = &ws
	}
	sp := params
	sp.Seed = randgen.SeedFrom(params.Seed, uint64(req.Shard))
	if req.K > 0 {
		sink := core.NewTopKSink(req.K, params.Alpha)
		sink.SetOnAccept(func(a core.Answer) {
			// Called with the sink's lock held: emit and return, no sink
			// methods from here.
			out.frame(cluster.ExecFrame{Accept: &cluster.AcceptFrame{Shard: req.Shard, Source: a.Source, Prob: a.Prob}})
		})
		s.floors.register(req.QueryID, sink)
		defer s.floors.deregister(req.QueryID, sink)
		sp.Sink = sink
		answers, st, err := s.coord.QueryShardGraph(ctx, local, q, sp)
		if err != nil {
			out.frame(cluster.ExecFrame{Error: err.Error()})
			return
		}
		_ = answers // the sink owns the shard's top-k run
		s.observeQuery("cluster-exec", st, tr)
		done := cluster.ExecDone{Shard: req.Shard, Answers: cluster.AnswersToWire(sink.Results()), Stats: cluster.StatsToWire(st), Infer: infer}
		out.frame(cluster.ExecFrame{Done: &done})
		return
	}
	answers, st, err := s.coord.QueryShardGraph(ctx, local, q, sp)
	if err != nil {
		out.frame(cluster.ExecFrame{Error: err.Error()})
		return
	}
	s.observeQuery("cluster-exec", st, tr)
	done := cluster.ExecDone{Shard: req.Shard, Answers: cluster.AnswersToWire(answers), Stats: cluster.StatsToWire(st), Infer: infer}
	out.frame(cluster.ExecFrame{Done: &done})
}

func (s *Server) handleClusterExecBatch(w http.ResponseWriter, r *http.Request) {
	var req cluster.BatchExecRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.checkEnvelope(w, req.Proto, req.NumShards) {
		return
	}
	local := 0
	if !req.Solo {
		if local = s.role.localOf(req.Shard); local < 0 {
			s.error(w, http.StatusBadRequest,
				fmt.Sprintf("global shard %d is not hosted here (serving %v)", req.Shard, s.role.Shards))
			return
		}
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	out := newNDJSON(w)

	itemTimeout := time.Duration(req.ItemTimeoutMs) * time.Millisecond
	fail := func(i int, err error) {
		out.frame(cluster.BatchExecFrame{Item: &cluster.BatchItemFrame{Index: i, Shard: req.Shard, Error: err.Error()}})
	}

	// Materialize the wire items. Matrix items of a scatter leg are
	// inferred here at the BASE seed — the shared prologue of the
	// in-process batch scatter — so every server derives the identical
	// graph; solo legs hand the matrix to the engine untouched.
	type liveItem struct {
		wire  int // index into req.Items (= the coordinator's frame index)
		item  core.BatchItem
		infer *cluster.WireStats
		sink  *core.TopKSink
	}
	var live []liveItem
	for i := range req.Items {
		wi := &req.Items[i]
		tr := obs.NewTracer()
		params, err := clusterParams(wi.Params, wi.Plan, tr)
		if err != nil {
			fail(i, err)
			continue
		}
		mq, q, err := clusterQuery(wi.Kind, wi.Genes, wi.Columns, wi.Edges)
		if err != nil {
			fail(i, err)
			continue
		}
		li := liveItem{wire: i}
		if req.Solo {
			li.item = core.BatchItem{Matrix: mq, Graph: q, Params: params, K: wi.K}
			live = append(live, li)
			continue
		}
		if mq != nil {
			ictx, icancel := ctx, context.CancelFunc(func() {})
			if itemTimeout > 0 {
				ictx, icancel = context.WithTimeout(ctx, itemTimeout)
			}
			var ist core.Stats
			q, ist, err = s.coord.InferGraphContext(ictx, mq, params)
			icancel()
			if err != nil {
				fail(i, err)
				continue
			}
			ws := cluster.StatsToWire(ist)
			li.infer = &ws
		}
		sp := params
		sp.Seed = randgen.SeedFrom(params.Seed, uint64(req.Shard))
		if wi.K > 0 {
			// Per-(item, shard) local sink: the coordinator merges the
			// shards' local top-k runs, so K stays 0 at the engine level and
			// the sink owns the trim (exactly the in-process shard leg).
			li.sink = core.NewTopKSink(wi.K, params.Alpha)
			sp.Sink = li.sink
		}
		li.item = core.BatchItem{Graph: q, Params: sp}
		live = append(live, li)
	}
	if len(live) == 0 {
		out.frame(cluster.BatchExecFrame{Done: &cluster.BatchExecDone{}})
		return
	}

	items := make([]core.BatchItem, len(live))
	for pos := range live {
		items[pos] = live[pos].item
	}
	opts := core.BatchOptions{
		SharedPerms: req.SharedPerms,
		ItemTimeout: itemTimeout,
		OnResult: func(pos int, res core.BatchResult) {
			li := &live[pos]
			fr := cluster.BatchItemFrame{Index: li.wire, Shard: req.Shard, Infer: li.infer}
			if res.Err != nil {
				fr.Error = res.Err.Error()
			} else {
				fr.Stats = cluster.StatsToWire(res.Stats)
				if li.sink != nil {
					fr.Answers = cluster.AnswersToWire(li.sink.Results())
				} else {
					fr.Answers = cluster.AnswersToWire(res.Answers)
				}
			}
			out.frame(cluster.BatchExecFrame{Item: &fr})
		},
	}
	var bst core.BatchStats
	var err error
	if req.Solo {
		_, bst = s.coord.QueryBatch(ctx, items, opts)
	} else {
		_, bst, err = s.coord.QueryShardBatch(ctx, local, items, opts)
	}
	if err != nil {
		out.frame(cluster.BatchExecFrame{Error: err.Error()})
		return
	}
	s.met.requests.With("cluster-exec-batch").Inc()
	out.frame(cluster.BatchExecFrame{Done: &cluster.BatchExecDone{
		Groups: bst.Groups, PermFills: bst.PermFills, PermProbes: bst.PermProbes,
	}})
}

func (s *Server) handleClusterMutate(w http.ResponseWriter, r *http.Request) {
	var req cluster.MutateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.checkEnvelope(w, req.Proto, req.NumShards) {
		return
	}
	// Placement must agree end to end: the coordinator placed the source
	// on ITS ring; re-derive on ours and reject disagreement rather than
	// placing the source somewhere a future query won't look.
	if want := s.role.Ring.Place(req.Source); want != req.Shard {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("placement disagreement: source %d places on shard %d here, request says %d", req.Source, want, req.Shard))
		return
	}
	if s.role.localOf(req.Shard) < 0 {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("global shard %d is not hosted here (serving %v)", req.Shard, s.role.Shards))
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	switch req.Op {
	case "add":
		ids := make([]gene.ID, len(req.Genes))
		for i, g := range req.Genes {
			ids[i] = gene.ID(g)
		}
		m, err := gene.NewMatrix(req.Source, ids, req.Columns)
		if err != nil {
			s.error(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := s.addMatrix(m); err != nil {
			switch {
			case errors.Is(err, shard.ErrSourceExists):
				s.error(w, http.StatusConflict, err.Error())
			case errors.Is(err, shard.ErrMutationTooLarge):
				s.error(w, http.StatusRequestEntityTooLarge, err.Error())
			default:
				s.error(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		s.met.mutations.With("add").Inc()
	case "remove":
		if err := s.removeMatrix(req.Source); err != nil {
			if errors.Is(err, shard.ErrSourceNotFound) {
				s.error(w, http.StatusNotFound, err.Error())
				return
			}
			s.error(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.met.mutations.With("remove").Inc()
	default:
		s.error(w, http.StatusBadRequest, fmt.Sprintf("unknown mutation op %q", req.Op))
		return
	}
	s.met.requests.With("cluster-mutate").Inc()
	writeJSON(w, http.StatusOK, cluster.MutateWireResponse{
		Status: "ok", Source: req.Source, Shard: req.Shard, Matrices: s.eng.Matrices(),
	})
}

func (s *Server) handleClusterFloor(w http.ResponseWriter, r *http.Request) {
	var req cluster.FloorRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Proto != cluster.ProtoVersion {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("protocol version mismatch: request speaks %d, this server speaks %d", req.Proto, cluster.ProtoVersion))
		return
	}
	n := s.floors.raise(req.QueryID, req.Floor)
	s.met.requests.With("cluster-floor").Inc()
	writeJSON(w, http.StatusOK, cluster.FloorResponse{Status: "ok", Sinks: n})
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	infos := s.coord.Snapshot()
	out := cluster.InfoResponse{
		Proto:     cluster.ProtoVersion,
		Role:      "shard",
		NumShards: s.role.NumShards,
		Shards:    make([]cluster.WireShardInfo, 0, len(infos)),
	}
	for local, info := range infos {
		global := local
		if local < len(s.role.Shards) {
			global = s.role.Shards[local]
		}
		out.Shards = append(out.Shards, cluster.WireShardInfo{
			Global: global, Local: local,
			Sources: info.Sources, Vectors: info.Vectors,
			Queries: info.Queries, Mutations: info.Mutations,
		})
	}
	if s.store != nil {
		ds := s.store.DurableStats()
		out.Gen = ds.Gen
		out.WarmBoot = ds.WarmBoot
	}
	s.met.requests.With("cluster-info").Inc()
	writeJSON(w, http.StatusOK, out)
}
