package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// batchFrames decodes an NDJSON /query-batch body into its per-item
// frames and the terminal done frame.
func batchFrames(t *testing.T, rec *httptest.ResponseRecorder) (map[int]BatchFrameJSON, BatchDoneJSON) {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	frames := make(map[int]BatchFrameJSON)
	var done BatchDoneJSON
	sawDone := false
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if sawDone {
			t.Fatalf("frame after done: %s", line)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, ok := probe["done"]; ok {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			sawDone = true
			continue
		}
		var f BatchFrameJSON
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatal(err)
		}
		if _, dup := frames[f.Index]; dup {
			t.Fatalf("duplicate frame for index %d", f.Index)
		}
		frames[f.Index] = f
	}
	if !sawDone {
		t.Fatal("no terminal done frame")
	}
	return frames, done
}

// TestQueryBatchEndpoint: a mixed matrix/graph batch answers every item
// with the same payload the solo endpoints produce, in NDJSON frames,
// with the batch counters in the terminal frame.
func TestQueryBatchEndpoint(t *testing.T) {
	s, _, db := fixture(t)
	p := ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true}
	q3 := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true})
	q7 := queryReqFor(db.BySource(7), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true})
	gq := GraphQueryRequest{
		Genes:  []string{"A", "B"},
		Edges:  []EdgeJSON{{S: 0, T: 1, Prob: 0.9}},
		Params: p,
	}
	want := []QueryResponse{
		decodeQuery(t, postJSON(t, s, "/query", q3)),
		decodeQuery(t, postJSON(t, s, "/query", q7)),
		decodeQuery(t, postJSON(t, s, "/query-graph", gq)),
	}

	req := BatchRequest{Queries: []BatchQueryJSON{
		{Genes: q3.Genes, Columns: q3.Columns, Params: q3.Params},
		{Genes: q7.Genes, Columns: q7.Columns, Params: q7.Params},
		{Genes: gq.Genes, Edges: gq.Edges, Params: gq.Params},
	}}
	frames, done := batchFrames(t, postJSON(t, s, "/query-batch", req))
	if done.Queries != 3 || done.Errors != 0 || done.Groups == 0 {
		t.Fatalf("done frame = %+v", done)
	}
	if len(frames) != 3 {
		t.Fatalf("%d frames for 3 items", len(frames))
	}
	for i, w := range want {
		f, ok := frames[i]
		if !ok {
			t.Fatalf("no frame for item %d", i)
		}
		if f.Error != "" {
			t.Fatalf("item %d error: %s", i, f.Error)
		}
		if len(f.Answers) != len(w.Answers) {
			t.Fatalf("item %d: %d answers, solo endpoint %d", i, len(f.Answers), len(w.Answers))
		}
		for j := range w.Answers {
			if f.Answers[j].Source != w.Answers[j].Source || f.Answers[j].Prob != w.Answers[j].Prob {
				t.Errorf("item %d answer %d differs from solo endpoint", i, j)
			}
		}
		if f.Stats == nil || f.Stats.QueryVertices != w.Stats.QueryVertices {
			t.Errorf("item %d stats = %+v, want vertices %d", i, f.Stats, w.Stats.QueryVertices)
		}
	}
}

// TestQueryBatchItemErrors: a malformed item gets an error frame; its
// siblings are answered normally and the batch succeeds.
func TestQueryBatchItemErrors(t *testing.T) {
	s, _, db := fixture(t)
	good := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true})
	req := BatchRequest{Queries: []BatchQueryJSON{
		{Genes: []string{"NOPE?"}, Columns: [][]float64{{1, 2}},
			Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5}},
		{Genes: good.Genes, Columns: good.Columns, Params: good.Params},
		{Genes: []string{"A", "B"}, Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5}},
	}}
	frames, done := batchFrames(t, postJSON(t, s, "/query-batch", req))
	if done.Errors != 2 {
		t.Fatalf("done.Errors = %d, want 2 (%+v)", done.Errors, done)
	}
	if frames[0].Error == "" || !strings.Contains(frames[0].Error, "NOPE?") {
		t.Errorf("item 0 error frame = %+v", frames[0])
	}
	if frames[1].Error != "" || len(frames[1].Answers) == 0 {
		t.Errorf("good sibling failed: %+v", frames[1])
	}
	if frames[2].Error == "" {
		t.Errorf("item without columns or edges accepted: %+v", frames[2])
	}
}

// TestQueryBatchLimits: empty and oversized batches are rejected up
// front with 400.
func TestQueryBatchLimits(t *testing.T) {
	s, _, db := fixture(t)
	if rec := postJSON(t, s, "/query-batch", BatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", rec.Code)
	}
	s.MaxBatchItems = 2
	q := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Analytic: true})
	item := BatchQueryJSON{Genes: q.Genes, Columns: q.Columns, Params: q.Params}
	req := BatchRequest{Queries: []BatchQueryJSON{item, item, item}}
	if rec := postJSON(t, s, "/query-batch", req); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d", rec.Code)
	}
	req.Queries = req.Queries[:2]
	if rec := postJSON(t, s, "/query-batch", req); rec.Code != http.StatusOK {
		t.Errorf("in-limit batch status = %d", rec.Code)
	}
}

// TestQueryBatchShedCountsItems: against MaxConcurrent a batch counts as
// its item count, so batching cannot bypass the load bound.
func TestQueryBatchShedCountsItems(t *testing.T) {
	s, _, db := fixture(t)
	s.MaxConcurrent = 2
	q := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Analytic: true})
	item := BatchQueryJSON{Genes: q.Genes, Columns: q.Columns, Params: q.Params}
	req := BatchRequest{Queries: []BatchQueryJSON{item, item, item}}
	if rec := postJSON(t, s, "/query-batch", req); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("3-item batch at MaxConcurrent=2: status = %d, want 503", rec.Code)
	}
	req.Queries = req.Queries[:2]
	if rec := postJSON(t, s, "/query-batch", req); rec.Code != http.StatusOK {
		t.Fatalf("2-item batch status = %d", rec.Code)
	}
	// A failed claim must release everything it grabbed.
	if rec := postJSON(t, s, "/query", q); rec.Code != http.StatusOK {
		t.Fatalf("solo query after shed batch: status = %d", rec.Code)
	}
}

// TestQueryBatchItemTimeout: QueryTimeout bounds each item, not the
// batch; expired items get error frames while the batch still answers
// 200 with a done frame.
func TestQueryBatchItemTimeout(t *testing.T) {
	s, _, db := fixture(t)
	s.QueryTimeout = time.Nanosecond
	q := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Analytic: true})
	item := BatchQueryJSON{Genes: q.Genes, Columns: q.Columns, Params: q.Params}
	req := BatchRequest{Queries: []BatchQueryJSON{item, item}}
	frames, done := batchFrames(t, postJSON(t, s, "/query-batch", req))
	if done.Errors != 2 {
		t.Fatalf("done.Errors = %d, want 2 with 1ns item windows", done.Errors)
	}
	for i := 0; i < 2; i++ {
		if frames[i].Error == "" {
			t.Errorf("item %d did not time out: %+v", i, frames[i])
		}
	}
	s.QueryTimeout = time.Minute
	frames, done = batchFrames(t, postJSON(t, s, "/query-batch", req))
	if done.Errors != 0 || frames[0].Error != "" {
		t.Fatalf("with a real window: %+v / %+v", done, frames[0])
	}
}

// TestQueryBatchMetrics: the imgrn_batch_* family tracks requests,
// items, shared-traversal groups and error frames.
func TestQueryBatchMetrics(t *testing.T) {
	s, _, db := fixture(t)
	q := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Analytic: true})
	item := BatchQueryJSON{Genes: q.Genes, Columns: q.Columns, Params: q.Params}
	bad := BatchQueryJSON{Genes: []string{"NOPE?"}, Columns: [][]float64{{1}},
		Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5}}
	batchFrames(t, postJSON(t, s, "/query-batch",
		BatchRequest{Queries: []BatchQueryJSON{item, item, bad}}))
	if got := s.met.batchRequests.Value(); got != 1 {
		t.Errorf("batch requests = %d", got)
	}
	if got := s.met.batchQueries.Value(); got != 3 {
		t.Errorf("batch queries = %d", got)
	}
	if got := s.met.batchItemErrs.Value(); got != 1 {
		t.Errorf("batch item errors = %d", got)
	}
	if got := s.met.batchGroups.Value(); got == 0 {
		t.Error("no shared traversal groups counted")
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, fam := range []string{
		"imgrn_batch_requests_total 1",
		"imgrn_batch_queries_total 3",
		"imgrn_batch_item_errors_total 1",
		"imgrn_batch_size_count 1",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}
}

// TestQueryBatchSharedPerms: the opt-in wire flag reaches the engine —
// the done frame reports permutation pool activity on a Monte Carlo
// batch — and the answers stay deterministic across repeats.
func TestQueryBatchSharedPerms(t *testing.T) {
	s, _, db := fixture(t)
	q := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 11, Samples: 32})
	item := BatchQueryJSON{Genes: q.Genes, Columns: q.Columns, Params: q.Params}
	req := BatchRequest{Queries: []BatchQueryJSON{item, item, item}, SharedPerms: true}
	frames1, done := batchFrames(t, postJSON(t, s, "/query-batch", req))
	if done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}
	if done.PermProbes == 0 || done.PermFills == 0 {
		t.Fatalf("sharedPerms ran without pool activity: %+v", done)
	}
	frames2, _ := batchFrames(t, postJSON(t, s, "/query-batch", req))
	for i := range req.Queries {
		a, b := frames1[i].Answers, frames2[i].Answers
		if len(a) != len(b) {
			t.Fatalf("item %d: repeat answer count differs", i)
		}
		for j := range a {
			if a[j].Source != b[j].Source || a[j].Prob != b[j].Prob {
				t.Errorf("item %d answer %d not deterministic", i, j)
			}
		}
	}
}

// TestQueryBatchSharded: the batch endpoint over a P=3 sharded server
// matches the solo endpoint answer for answer.
func TestQueryBatchSharded(t *testing.T) {
	s, db := shardedFixture(t, 3)
	p := ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true, TopK: 4}
	q := queryReqFor(db.BySource(3), 0.6, 0.4, p)
	want := decodeQuery(t, postJSON(t, s, "/query", q))
	req := BatchRequest{Queries: []BatchQueryJSON{
		{Genes: q.Genes, Columns: q.Columns, Params: q.Params},
	}}
	frames, done := batchFrames(t, postJSON(t, s, "/query-batch", req))
	if done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}
	f := frames[0]
	if len(f.Answers) != len(want.Answers) {
		t.Fatalf("%d answers, solo sharded endpoint %d", len(f.Answers), len(want.Answers))
	}
	for j := range want.Answers {
		if f.Answers[j].Source != want.Answers[j].Source || f.Answers[j].Prob != want.Answers[j].Prob {
			t.Errorf("answer %d differs from solo sharded endpoint", j)
		}
	}
}

// batchVsMutationsRace hammers /query-batch concurrently with
// /add-matrix and /remove-matrix; run under -race this pins the locking
// protocol between the batch scatter and shard mutations.
func batchVsMutationsRace(t *testing.T, s *Server, queries BatchRequest, addSrc int) {
	t.Helper()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := addSrc + i%4
			postJSON(t, s, "/add-matrix", addBody(t, src))
			postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: src})
		}
	}()
	for round := 0; round < 6; round++ {
		rec := postJSON(t, s, "/query-batch", queries)
		if rec.Code != http.StatusOK {
			t.Errorf("round %d: status = %d body %s", round, rec.Code, rec.Body)
		}
	}
	close(stop)
	wg.Wait()
}

func TestQueryBatchConcurrentWithMutationsSharded(t *testing.T) {
	s, db := shardedFixture(t, 3)
	q := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 5, Analytic: true})
	item := BatchQueryJSON{Genes: q.Genes, Columns: q.Columns, Params: q.Params}
	batchVsMutationsRace(t, s, BatchRequest{Queries: []BatchQueryJSON{item, item, item}}, 80)
}

func TestQueryBatchConcurrentWithMutationsDurable(t *testing.T) {
	s, st := durableFixture(t, t.TempDir(), testDB(t, 8))
	defer st.Close()
	// The durable fixture has numeric genes (1, 2); query them directly.
	item := BatchQueryJSON{
		Genes:  []string{"1", "2"},
		Edges:  []EdgeJSON{{S: 0, T: 1, Prob: 0.5}},
		Params: ParamsJSON{Gamma: 0.9, Alpha: 0.1, Seed: 5, Analytic: true},
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := 90 + i%4
			postJSON(t, s, "/add-matrix", AddMatrixRequest{
				Source: src, Genes: []string{"1", "2"},
				Columns: [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}},
			})
			postJSON(t, s, "/remove-matrix", RemoveMatrixRequest{Source: src})
		}
	}()
	req := BatchRequest{Queries: []BatchQueryJSON{item, item}}
	for round := 0; round < 6; round++ {
		rec := postJSON(t, s, "/query-batch", req)
		if rec.Code != http.StatusOK {
			t.Errorf("round %d: status = %d body %s", round, rec.Code, rec.Body)
		}
	}
	close(stop)
	wg.Wait()
}
