package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/plan"
)

// planQueryRequest is the shared accuracy-requesting query fixture.
func planQueryRequest(t *testing.T, s *Server, params ParamsJSON) *httptest.ResponseRecorder {
	t.Helper()
	return postJSON(t, s, "/query-graph", GraphQueryRequest{
		Genes:  []string{"A", "B", "C"},
		Edges:  []EdgeJSON{{S: 0, T: 1, Prob: 0.8}, {S: 1, T: 2, Prob: 0.8}},
		Params: params,
	})
}

// TestQueryBadAccuracy400: an invalid (eps, delta) is a client error —
// the request is answered 400 with a JSON error body, never a panic
// (the old stats.SampleSize path panicked on bad accuracy parameters).
func TestQueryBadAccuracy400(t *testing.T) {
	s, _, _ := fixture(t)
	for _, p := range []ParamsJSON{
		{Gamma: 0.5, Alpha: 0.4, Eps: -0.1, Delta: 0.05},
		{Gamma: 0.5, Alpha: 0.4, Eps: 0.1},           // delta missing
		{Gamma: 0.5, Alpha: 0.4, Delta: 0.05},        // eps missing
		{Gamma: 0.5, Alpha: 0.4, Eps: 0.1, Delta: 1}, // delta at the open bound
		{Gamma: 0.5, Alpha: 0.4, Eps: 0.1, Delta: -2},
	} {
		rec := planQueryRequest(t, s, p)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("params %+v: status = %d body %s, want 400", p, rec.Code, rec.Body)
			continue
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Errorf("params %+v: no JSON error body: %s", p, rec.Body)
		}
	}
}

// TestQueryPlanBlock: every query's stats carry the "plan" block, and a
// requested (ε, δ) = (0.1, 0.05) provably runs with the Lemma-2 sample
// count R = 1107.
func TestQueryPlanBlock(t *testing.T) {
	s, _, _ := fixture(t)
	rec := planQueryRequest(t, s, ParamsJSON{Gamma: 0.5, Alpha: 0.4, Seed: 3, Eps: 0.1, Delta: 0.05})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	pl := resp.Stats.Plan
	if pl == nil {
		t.Fatal("stats carry no plan block")
	}
	if pl.Samples != 1107 || !pl.FromAccuracy || pl.Eps != 0.1 || pl.Delta != 0.05 {
		t.Errorf("plan = %+v, want fromAccuracy samples=1107", pl)
	}
	if pl.Mode != "fixed" || !pl.PivotPruning || !pl.Signatures || !pl.MarkovPruning || !pl.BatchKernel {
		t.Errorf("default plan not the fixed full pipeline: %+v", pl)
	}

	// Without an accuracy request the plan reports the effective default.
	rec = planQueryRequest(t, s, ParamsJSON{Gamma: 0.5, Alpha: 0.4, Seed: 3, Analytic: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	resp = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Plan == nil || resp.Stats.Plan.FromAccuracy || resp.Stats.Plan.Samples <= 0 {
		t.Errorf("default plan block = %+v", resp.Stats.Plan)
	}
}

// TestAdaptivePlannerLoop: with a Planner installed the server builds
// plans through it (a "plan" span appears in the trace), feeds realized
// stage statistics back, and exposes the imgrn_plan_* metric family.
func TestAdaptivePlannerLoop(t *testing.T) {
	s, _, _ := fixture(t)
	s.Planner = plan.NewPlanner(plan.Options{MinQueries: 2})

	params := ParamsJSON{Gamma: 0.5, Alpha: 0.4, Seed: 3, Analytic: true, Trace: true}
	var resp QueryResponse
	for i := 0; i < 4; i++ {
		rec := planQueryRequest(t, s, params)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status = %d body %s", i, rec.Code, rec.Body)
		}
		resp = QueryResponse{}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Planner.Queries(); got != 4 {
		t.Errorf("planner observed %d queries, want 4", got)
	}
	planSpan := false
	for _, sp := range resp.Trace {
		if sp.Stage == "plan" {
			planSpan = true
		}
	}
	if !planSpan {
		t.Errorf("no plan span in trace: %+v", resp.Trace)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"imgrn_plan_queries_total{mode=\"fixed\"}",
		"imgrn_plan_queries_total{mode=\"adaptive\"}",
		"imgrn_plan_skips_total{stage=\"markov_prune\"}",
		"imgrn_plan_samples",
		"imgrn_plan_stage_cost_nanos{stage=\"monte_carlo\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
