package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func queryReqFor(db interface{ Col(int) []float64 }, gamma, alpha float64, extra ParamsJSON) QueryRequest {
	extra.Gamma, extra.Alpha = gamma, alpha
	return QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{db.Col(0), db.Col(1), db.Col(2)},
		Params:  extra,
	}
}

func decodeQuery(t *testing.T, rec *httptest.ResponseRecorder) QueryResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestConcurrentQueriesIndependentAccounting: concurrent requests must not
// serialize, and each response's ioPages must equal what the same query
// reports when run alone — per-request accounting, no shared counters.
func TestConcurrentQueriesIndependentAccounting(t *testing.T) {
	s, _, db := fixture(t)
	reqs := []QueryRequest{
		queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true}),
		queryReqFor(db.BySource(7), 0.7, 0.5, ParamsJSON{Seed: 4, Analytic: true}),
	}
	// Serial reference runs.
	want := make([]QueryResponse, len(reqs))
	for i, r := range reqs {
		want[i] = decodeQuery(t, postJSON(t, s, "/query", r))
	}
	const rounds = 8
	var wg sync.WaitGroup
	got := make([]QueryResponse, len(reqs)*rounds)
	for round := 0; round < rounds; round++ {
		for i, r := range reqs {
			wg.Add(1)
			go func(slot int, r QueryRequest) {
				defer wg.Done()
				got[slot] = decodeQuery(t, postJSON(t, s, "/query", r))
			}(round*len(reqs)+i, r)
		}
	}
	wg.Wait()
	for round := 0; round < rounds; round++ {
		for i := range reqs {
			g, w := got[round*len(reqs)+i], want[i]
			if g.Stats.IOCost != w.Stats.IOCost {
				t.Errorf("round %d query %d: ioPages = %d, serial run %d (accounting polluted by concurrency)",
					round, i, g.Stats.IOCost, w.Stats.IOCost)
			}
			if len(g.Answers) != len(w.Answers) {
				t.Errorf("round %d query %d: %d answers, serial run %d",
					round, i, len(g.Answers), len(w.Answers))
			}
		}
	}
}

func TestMaxConcurrentShedsWith503(t *testing.T) {
	s, _, db := fixture(t)
	s.MaxConcurrent = 1
	// Occupy the only slot.
	release, ok := s.acquire(httptest.NewRecorder())
	if !ok {
		t.Fatal("could not take the first slot")
	}
	req := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true})
	rec := postJSON(t, s, "/query", req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("at capacity status = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	release()
	rec = postJSON(t, s, "/query", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("after release status = %d (body %s)", rec.Code, rec.Body)
	}
}

func TestQueryTimeoutReturns503(t *testing.T) {
	s, _, db := fixture(t)
	s.QueryTimeout = time.Nanosecond // expired before the query starts
	req := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true})
	rec := postJSON(t, s, "/query", req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out status = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Fatalf("timeout error body = %s", rec.Body)
	}
}

// TestWorkersParam: a parallel request must return the same answers as the
// sequential default under the analytic estimator.
func TestWorkersParam(t *testing.T) {
	s, _, db := fixture(t)
	seqReq := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true})
	parReq := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 3, Analytic: true, Workers: 4})
	seq := decodeQuery(t, postJSON(t, s, "/query", seqReq))
	par := decodeQuery(t, postJSON(t, s, "/query", parReq))
	if len(seq.Answers) != len(par.Answers) {
		t.Fatalf("workers=4 answers = %d, sequential %d", len(par.Answers), len(seq.Answers))
	}
	for i := range seq.Answers {
		if seq.Answers[i].Source != par.Answers[i].Source || seq.Answers[i].Prob != par.Answers[i].Prob {
			t.Errorf("answer %d differs between workers=0 and workers=4", i)
		}
	}
}

// TestCacheCountersOnWire: a repeated Monte Carlo request is served from
// the shared edge-probability cache and says so in its stats.
func TestCacheCountersOnWire(t *testing.T) {
	s, _, db := fixture(t)
	req := queryReqFor(db.BySource(3), 0.6, 0.4, ParamsJSON{Seed: 9, Samples: 32})
	first := decodeQuery(t, postJSON(t, s, "/query", req))
	if first.Stats.CacheHits != 0 {
		t.Errorf("first request reported %d hits on a cold cache", first.Stats.CacheHits)
	}
	if first.Stats.CacheMisses == 0 {
		t.Fatalf("first MC request reported no cache lookups: %+v", first.Stats)
	}
	second := decodeQuery(t, postJSON(t, s, "/query", req))
	if second.Stats.CacheHits == 0 {
		t.Errorf("repeat request reported no cache hits: %+v", second.Stats)
	}
}
