package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
)

// fixture builds a server over a small database with a planted module on
// genes named A, B, C present in every source.
func fixture(t *testing.T) (*Server, *gene.Catalog, *gene.Database) {
	t.Helper()
	rng := randgen.New(1)
	cat := gene.NewCatalog()
	idA, idB, idC := cat.Intern("A"), cat.Intern("B"), cat.Intern("C")
	db := gene.NewDatabase()
	for src := 0; src < 12; src++ {
		l := 18
		driver := make([]float64, l)
		for i := range driver {
			driver[i] = rng.Gaussian(0, 1)
		}
		mk := func(coef, noise float64) []float64 {
			col := make([]float64, l)
			for i := range col {
				col[i] = coef*driver[i] + noise*rng.Gaussian(0, 1)
			}
			return col
		}
		m, err := gene.NewMatrix(src,
			[]gene.ID{idA, idB, idC, gene.ID(100 + src)},
			[][]float64{mk(1, 0.1), mk(0.9, 0.2), mk(-0.9, 0.2), mk(0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := index.Build(db, index.Options{D: 2, Samples: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return New(idx, cat), cat, db
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _, _ := fixture(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestStats(t *testing.T) {
	s, _, db := fixture(t)
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Matrices != db.Len() || resp.Vectors != db.Len()*4 {
		t.Errorf("stats = %+v", resp)
	}
	if rec2 := postJSON(t, s, "/stats", nil); rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d", rec2.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, _, db := fixture(t)
	// Use source 3's own module columns as the query matrix.
	m := db.BySource(3)
	req := QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{m.Col(0), m.Col(1), m.Col(2)},
		Params:  ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true},
	}
	rec := postJSON(t, s, "/query", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.QueryVertices != 3 || resp.Stats.QueryEdges == 0 {
		t.Errorf("stats = %+v", resp.Stats)
	}
	if len(resp.Answers) < 10 {
		t.Errorf("answers = %d, want most of the 12 sources", len(resp.Answers))
	}
	for _, a := range resp.Answers {
		if a.Prob <= 0.4 {
			t.Errorf("answer below alpha: %+v", a)
		}
		if len(a.Genes) != 3 || a.Genes[0] != "A" {
			t.Errorf("gene names not resolved: %+v", a.Genes)
		}
	}
}

func TestQueryGraphEndpointWithTopK(t *testing.T) {
	s, _, _ := fixture(t)
	req := GraphQueryRequest{
		Genes: []string{"A", "B"},
		Edges: []EdgeJSON{{S: 0, T: 1, Prob: 0.9}},
		Params: ParamsJSON{
			Gamma: 0.6, Alpha: 0.5, Analytic: true, TopK: 4,
		},
	}
	rec := postJSON(t, s, "/query-graph", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 4 {
		t.Fatalf("topK answers = %d, want 4", len(resp.Answers))
	}
	for i := 1; i < len(resp.Answers); i++ {
		if resp.Answers[i].Prob > resp.Answers[i-1].Prob {
			t.Error("topK answers not ranked")
		}
	}
}

func TestQueryBadRequests(t *testing.T) {
	s, _, _ := fixture(t)
	cases := []struct {
		name string
		body any
	}{
		{"unknown gene", QueryRequest{Genes: []string{"NOPE?"},
			Columns: [][]float64{{1, 2}}, Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5}}},
		{"count mismatch", QueryRequest{Genes: []string{"A", "B"},
			Columns: [][]float64{{1, 2}}, Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5}}},
		{"ragged columns", QueryRequest{Genes: []string{"A", "B"},
			Columns: [][]float64{{1, 2}, {1}}, Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5}}},
		{"bad gamma", QueryRequest{Genes: []string{"A"},
			Columns: [][]float64{{1, 2}}, Params: ParamsJSON{Gamma: 1.5, Alpha: 0.5}}},
	}
	for _, c := range cases {
		if rec := postJSON(t, s, "/query", c.body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d body %s", c.name, rec.Code, rec.Body)
		}
	}
	// Malformed JSON and unknown fields.
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte(`{"bogus":1}`)))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", rec.Code)
	}
	// GET on POST endpoint.
	req = httptest.NewRequest(http.MethodGet, "/query", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", rec.Code)
	}
}

func TestQueryGraphBadEdge(t *testing.T) {
	s, _, _ := fixture(t)
	req := GraphQueryRequest{
		Genes:  []string{"A", "B"},
		Edges:  []EdgeJSON{{S: 0, T: 5, Prob: 0.9}},
		Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5},
	}
	if rec := postJSON(t, s, "/query-graph", req); rec.Code != http.StatusBadRequest {
		t.Errorf("bad edge status = %d", rec.Code)
	}
}

func TestNumericGeneFallback(t *testing.T) {
	s, _, db := fixture(t)
	// Gene 103 exists only in source 3; numeric addressing must work.
	if !db.BySource(3).Has(gene.ID(103)) {
		t.Skip("fixture layout changed")
	}
	req := GraphQueryRequest{
		Genes:  []string{"A", "103"},
		Edges:  nil, // gene-containment query
		Params: ParamsJSON{Gamma: 0.5, Alpha: 0.5, Analytic: true},
	}
	rec := postJSON(t, s, "/query-graph", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Source != 3 {
		t.Errorf("numeric gene query answers = %+v", resp.Answers)
	}
}

func TestClusterEndpoint(t *testing.T) {
	s, _, db := fixture(t)
	rec := postJSON(t, s, "/cluster", ClusterRequest{K: 2, Seed: 9})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp ClusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(resp.Clusters))
	}
	total := 0
	for _, c := range resp.Clusters {
		total += len(c.Members)
		found := false
		for _, m := range c.Members {
			if m == c.Medoid {
				found = true
			}
		}
		if !found {
			t.Errorf("medoid %d not among its members", c.Medoid)
		}
	}
	if total != db.Len() {
		t.Errorf("members cover %d of %d sources", total, db.Len())
	}
	// Bad k.
	if rec := postJSON(t, s, "/cluster", ClusterRequest{K: 0}); rec.Code != http.StatusBadRequest {
		t.Errorf("k=0 status = %d", rec.Code)
	}
	if rec := postJSON(t, s, "/cluster", ClusterRequest{K: 999}); rec.Code != http.StatusBadRequest {
		t.Errorf("k too large status = %d", rec.Code)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	s, _, _ := fixture(t)
	s.MaxBodyBytes = 64
	big := QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{make([]float64, 100), make([]float64, 100), make([]float64, 100)},
		Params:  ParamsJSON{Gamma: 0.5, Alpha: 0.5},
	}
	if rec := postJSON(t, s, "/query", big); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized body status = %d", rec.Code)
	}
}

func TestUnknownPath(t *testing.T) {
	s, _, _ := fixture(t)
	req := httptest.NewRequest(http.MethodGet, "/nope", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}
