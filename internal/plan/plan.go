// Package plan is the query-planner seam between ad-hoc query-GRN
// inference and index traversal: it turns the paper's own levers — the
// Lemma-2 (ε, δ) sample-size bound and the §4 pivot cost model T_i —
// plus the engine's observed stage statistics into an explicit, per-query
// execution Plan.
//
// A Plan fixes, before the pipeline runs:
//
//   - the Monte Carlo sample count R for exact edge probabilities, chosen
//     from a requested accuracy (ε, δ) via stats.SampleSizeErr instead of
//     the global stats.DefaultSamples;
//   - which optional prune stages run (leaf-level pivot pruning,
//     bit-vector signature filters, Lemma-5 Markov-bound pruning) or
//     whether candidates go straight to refinement;
//   - the query-graph inference kernel (batched vs scalar).
//
// Resolve builds the fixed default plan: a pure round-trip of the
// caller's parameters, byte-identical to the pre-planner pipeline.
// Planner (planner.go) builds adaptive plans by evaluating the cost
// model online from obs-layer stage feedback and cached
// edge-probability density.
//
// The package sits below internal/core in the import order: core
// executes plans, so plan must not import it.
package plan

import (
	"github.com/imgrn/imgrn/internal/stats"
)

// Request carries everything the planner may consult about one query and
// its engine. The zero value of the optional shape fields (QueryGenes,
// CacheEntries, DBVectors, MeanPivotCost) means "unknown"; Resolve
// ignores them, Planner uses them as cost-model inputs.
type Request struct {
	// Eps, Delta request an (ε, δ)-approximation per Lemma 2: when either
	// is non-zero both must be valid (ε > 0, 0 < δ < 1) and the plan's
	// Samples becomes SampleSize(ε, δ), overriding Samples below.
	Eps, Delta float64

	// Samples is the caller's fixed Monte Carlo sample count (0 = engine
	// default), used when no accuracy is requested.
	Samples int

	// Pivot, Signatures, Markov, Batch mirror the fixed pipeline's stage
	// switches (the inverse of core.Params' Disable* ablation flags): the
	// stage set the plan starts from before any adaptive decision.
	Pivot, Signatures, Markov, Batch bool

	// QueryGenes is the query width n_Q when known (0 = unknown); it
	// drives the batch-vs-scalar kernel selection.
	QueryGenes int

	// CacheEntries counts memoized edge probabilities available to this
	// query (same estimator settings), and DBVectors the indexed gene
	// vectors; together they give the cache-density prior that discounts
	// the modeled verification cost.
	CacheEntries int
	DBVectors    int

	// MeanPivotCost is the index's average per-vector §4 cost T_i/n
	// (index.BuildStats.PivotCostSum over vectors). Standardized vectors
	// have pairwise distances in [0, 2], so the per-vector term
	// 2·min_r d_r lies in [0, 4]; values near 4 mean the pivots bound
	// nothing and pivot-based pruning cannot fire.
	MeanPivotCost float64
}

// Plan is the resolved execution plan of one query. It is immutable
// after construction and shared: the sharded coordinator resolves one
// plan per query and every shard executes the same pointer.
type Plan struct {
	// Samples is the Monte Carlo sample count R for exact edge
	// probabilities (0 = engine default, only when no accuracy was
	// requested).
	Samples int

	// FromAccuracy records that Samples was derived from (Eps, Delta)
	// via the Lemma-2 bound rather than passed through.
	FromAccuracy bool

	// Eps, Delta echo the requested accuracy (zero when none).
	Eps, Delta float64

	// Stage switches: false skips the stage. Pivot is leaf-level PPR
	// point-pair pruning, Signatures the bit-vector gene/source filters,
	// Markov the Lemma-5 graph existence pruning, Batch the batched
	// inference kernel. All true (for an all-enabled request) is the
	// paper's fixed pipeline; all prune switches false sends candidates
	// straight to refinement.
	Pivot, Signatures, Markov, Batch bool

	// Adaptive records that at least one decision departed from the
	// fixed pipeline; Skipped lists the departures by stage name
	// ("pivot_prune", "signature", "markov_prune", "batch_kernel").
	Adaptive bool
	Skipped  []string

	// Cost snapshots the cost-model state behind the decisions (zero for
	// a fixed Resolve plan).
	Cost CostModel
}

// CostModel is the planner's modeled view of the refinement economics at
// plan time: per-candidate stage costs in seconds, stage selectivities
// as fractions, and the cache-density discount applied to the modeled
// verification cost.
type CostModel struct {
	MarkovPerCandidate     float64 `json:"markovPerCandidate"`
	MonteCarloPerCandidate float64 `json:"monteCarloPerCandidate"`
	MarkovPruneFrac        float64 `json:"markovPruneFrac"`
	PointPruneFrac         float64 `json:"pointPruneFrac"`
	NodePruneFrac          float64 `json:"nodePruneFrac"`
	CacheHitRate           float64 `json:"cacheHitRate"`
	MeanPivotCost          float64 `json:"meanPivotCost"`
}

// EffectiveSamples is the sample count the estimators will actually use:
// Samples, or stats.DefaultSamples when the plan leaves it 0.
func (p *Plan) EffectiveSamples() int {
	if p.Samples > 0 {
		return p.Samples
	}
	return stats.DefaultSamples
}

// Mode names the plan for metrics and wire labels: "adaptive" when any
// decision departed from the fixed pipeline, else "fixed".
func (p *Plan) Mode() string {
	if p.Adaptive {
		return "adaptive"
	}
	return "fixed"
}

// Resolve builds the fixed default plan for req: the requested stage set
// verbatim, with Samples either carried through or — when an accuracy is
// requested — chosen as the Lemma-2 bound R = SampleSize(Eps, Delta).
// The only error is an invalid (Eps, Delta). Applying a Resolve plan
// back onto the parameters it came from is the identity, which is what
// keeps the default plan byte-identical to the pre-planner pipeline.
func Resolve(req Request) (*Plan, error) {
	p := &Plan{
		Samples:    req.Samples,
		Pivot:      req.Pivot,
		Signatures: req.Signatures,
		Markov:     req.Markov,
		Batch:      req.Batch,
	}
	if req.Eps != 0 || req.Delta != 0 {
		r, err := stats.SampleSizeErr(req.Eps, req.Delta)
		if err != nil {
			return nil, err
		}
		p.Samples = r
		p.FromAccuracy = true
		p.Eps, p.Delta = req.Eps, req.Delta
	}
	return p, nil
}
