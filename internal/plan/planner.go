package plan

import "sync"

// Options tunes the adaptive Planner. The zero value takes the defaults
// documented per field.
type Options struct {
	// MinQueries is the number of observed queries before adaptive
	// decisions engage (default 32). Until then every plan is the fixed
	// Resolve plan — the cost model must see real stage statistics
	// before it is trusted to skip work.
	MinQueries int

	// Margin is the safety multiple a stage's modeled cost must exceed
	// its modeled savings by before the stage is skipped (default 2):
	// skip Lemma-5 pruning only when it costs more than Margin× what it
	// saves. Conservative by construction — a stage that pays for
	// itself is never dropped.
	Margin float64

	// Decay is the EWMA weight of the newest observation (default 0.2).
	Decay float64

	// MinPruneFrac is the observed selectivity below which a pure
	// filter stage (pivot point-pair pruning, signature node filters)
	// counts as dead weight and is skipped (default 0.002).
	MinPruneFrac float64

	// MinBatchGenes is the query width below which the batched
	// inference kernel is replaced by the scalar path (default 3): with
	// n_Q < 3 a target column has at most one partner, so the per-column
	// permutation-batch setup cannot amortize.
	MinBatchGenes int
}

func (o Options) withDefaults() Options {
	if o.MinQueries <= 0 {
		o.MinQueries = 32
	}
	if o.Margin <= 0 {
		o.Margin = 2
	}
	if o.Decay <= 0 || o.Decay > 1 {
		o.Decay = 0.2
	}
	if o.MinPruneFrac <= 0 {
		o.MinPruneFrac = 0.002
	}
	if o.MinBatchGenes <= 0 {
		o.MinBatchGenes = 3
	}
	return o
}

// Feedback is one finished query's stage statistics, fed back into the
// cost model. The server builds it from core.Stats (whose counters the
// obs-layer spans mirror); all durations are seconds.
type Feedback struct {
	// Candidates entered Lemma-5 pruning; PrunedL5 of them were removed
	// by it; the survivors went to exact Monte Carlo verification.
	Candidates int
	PrunedL5   int

	// MarkovSeconds / MonteCarloSeconds are the aggregate per-candidate
	// stage durations (core.Stats.MarkovPrune / MonteCarlo).
	MarkovSeconds     float64
	MonteCarloSeconds float64

	// Traversal selectivities: leaf point pairs checked/pruned by the
	// pivot bound, node pairs visited/pruned by signatures + Lemma 6.
	PointPairsChecked int
	PointPairsPruned  int
	NodePairsVisited  int
	NodePairsPruned   int

	// Edge-probability cache effectiveness during verification.
	CacheHits   int
	CacheMisses int
}

// ewma is an exponentially weighted moving average that starts at its
// first observation.
type ewma struct {
	v    float64
	seen bool
}

func (e *ewma) observe(x, decay float64) {
	if !e.seen {
		e.v, e.seen = x, true
		return
	}
	e.v += decay * (x - e.v)
}

// Planner builds adaptive plans by evaluating the §4 cost model online:
// it maintains EWMA estimates of per-candidate stage costs and stage
// selectivities from query feedback and decides, per plan, whether each
// optional prune stage still pays for itself. Safe for concurrent use.
//
// Determinism: Plan is a pure function of (Request, observed feedback
// history, Options). Two planners fed the same history in the same
// order produce identical plans.
type Planner struct {
	mu   sync.Mutex
	opts Options

	queries     int
	markovCost  ewma // seconds per candidate entering Lemma 5
	mcCost      ewma // seconds per candidate surviving to verification
	markovPrune ewma // fraction of candidates pruned by Lemma 5
	pointPrune  ewma // fraction of checked point pairs pruned by the pivot bound
	nodePrune   ewma // fraction of node pairs pruned during traversal
	cacheHit    ewma // cache hit rate during verification
	skips       map[string]uint64
}

// NewPlanner returns a Planner with opts (zero value = defaults).
func NewPlanner(opts Options) *Planner {
	return &Planner{opts: opts.withDefaults(), skips: make(map[string]uint64)}
}

// Observe folds one finished query's statistics into the cost model.
func (p *Planner) Observe(fb Feedback) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.opts.Decay
	p.queries++
	if fb.Candidates > 0 {
		p.markovCost.observe(fb.MarkovSeconds/float64(fb.Candidates), d)
		p.markovPrune.observe(float64(fb.PrunedL5)/float64(fb.Candidates), d)
		if surv := fb.Candidates - fb.PrunedL5; surv > 0 {
			p.mcCost.observe(fb.MonteCarloSeconds/float64(surv), d)
		}
	}
	if fb.PointPairsChecked > 0 {
		p.pointPrune.observe(float64(fb.PointPairsPruned)/float64(fb.PointPairsChecked), d)
	}
	if n := fb.NodePairsVisited + fb.NodePairsPruned; n > 0 {
		p.nodePrune.observe(float64(fb.NodePairsPruned)/float64(n), d)
	}
	if n := fb.CacheHits + fb.CacheMisses; n > 0 {
		p.cacheHit.observe(float64(fb.CacheHits)/float64(n), d)
	}
}

// Queries reports how many queries the cost model has observed.
func (p *Planner) Queries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queries
}

// Plan builds the plan for req: the fixed Resolve plan, refined by the
// cost model once it has observed at least Options.MinQueries queries.
// Stage decisions (conservative by construction — see each rule):
//
//   - Lemma-5 Markov pruning is skipped when its modeled cost per
//     candidate exceeds Margin× its modeled savings,
//     pruneFrac · mcCost · (1 − cacheHitRate): a high cache hit rate or
//     a dead prune rate makes the bound not worth computing.
//   - Pivot point-pair pruning is skipped when its observed prune
//     fraction falls below MinPruneFrac. Before any point pair has been
//     observed, the §4 prior 1 − MeanPivotCost/4 stands in (the
//     per-vector cost 2·min_r d_r maxes out at 4 for standardized
//     vectors, where the bound is vacuous).
//   - Signature node filters are skipped when the observed node-pair
//     prune fraction falls below MinPruneFrac.
//   - The batched inference kernel is replaced by the scalar path when
//     the query is narrower than MinBatchGenes.
func (p *Planner) Plan(req Request) (*Plan, error) {
	pl, err := Resolve(req)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pl.Cost = p.costModelLocked(req)
	if p.queries < p.opts.MinQueries {
		return pl, nil
	}
	skip := func(stage string) {
		pl.Adaptive = true
		pl.Skipped = append(pl.Skipped, stage)
		p.skips[stage]++
	}
	if pl.Markov && p.markovCost.seen && p.mcCost.seen {
		saving := pl.Cost.MarkovPruneFrac * pl.Cost.MonteCarloPerCandidate * (1 - pl.Cost.CacheHitRate)
		if pl.Cost.MarkovPerCandidate > p.opts.Margin*saving {
			pl.Markov = false
			skip("markov_prune")
		}
	}
	if pl.Pivot {
		frac := pl.Cost.PointPruneFrac
		if !p.pointPrune.seen {
			// No leaf pair observed yet: fall back to the §4 prior.
			frac = 1 - req.MeanPivotCost/4
			if req.MeanPivotCost == 0 {
				frac = 1 // unknown index: never skip on no evidence
			}
		}
		if frac < p.opts.MinPruneFrac {
			pl.Pivot = false
			skip("pivot_prune")
		}
	}
	if pl.Signatures && p.nodePrune.seen && pl.Cost.NodePruneFrac < p.opts.MinPruneFrac {
		pl.Signatures = false
		skip("signature")
	}
	if pl.Batch && req.QueryGenes > 0 && req.QueryGenes < p.opts.MinBatchGenes {
		pl.Batch = false
		skip("batch_kernel")
	}
	return pl, nil
}

// costModelLocked snapshots the EWMA state as a CostModel. The cache-hit
// rate uses the density prior entries/(entries+vectors) until real
// hit/miss observations arrive.
func (p *Planner) costModelLocked(req Request) CostModel {
	hit := p.cacheHit.v
	if !p.cacheHit.seen && req.CacheEntries > 0 && req.DBVectors > 0 {
		hit = float64(req.CacheEntries) / float64(req.CacheEntries+req.DBVectors)
	}
	return CostModel{
		MarkovPerCandidate:     p.markovCost.v,
		MonteCarloPerCandidate: p.mcCost.v,
		MarkovPruneFrac:        p.markovPrune.v,
		PointPruneFrac:         p.pointPrune.v,
		NodePruneFrac:          p.nodePrune.v,
		CacheHitRate:           hit,
		MeanPivotCost:          req.MeanPivotCost,
	}
}

// Snapshot is the observable planner state for metrics.
type Snapshot struct {
	// Queries observed by the cost model.
	Queries int
	// Cost is the current EWMA cost-model state.
	Cost CostModel
	// Skips counts lifetime stage-skip decisions by stage name.
	Skips map[string]uint64
}

// Snapshot returns a copy of the planner's observable state.
func (p *Planner) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	skips := make(map[string]uint64, len(p.skips))
	for k, v := range p.skips {
		skips[k] = v
	}
	return Snapshot{
		Queries: p.queries,
		Cost:    p.costModelLocked(Request{}),
		Skips:   skips,
	}
}
