package plan

import (
	"testing"

	"github.com/imgrn/imgrn/internal/stats"
)

// TestResolveCarriesRequestVerbatim pins the identity property the golden
// suites rely on: without an accuracy request, Resolve passes the sample
// count and every stage switch through unchanged, so applying the default
// plan back onto the params it came from changes nothing.
func TestResolveCarriesRequestVerbatim(t *testing.T) {
	reqs := []Request{
		{Pivot: true, Signatures: true, Markov: true, Batch: true},
		{Samples: 48, Pivot: true, Signatures: true, Markov: true, Batch: true},
		{Samples: 7, Pivot: false, Signatures: true, Markov: false, Batch: true},
		{Samples: 0, Pivot: true, Signatures: false, Markov: true, Batch: false},
	}
	for _, req := range reqs {
		pl, err := Resolve(req)
		if err != nil {
			t.Fatalf("Resolve(%+v): %v", req, err)
		}
		if pl.Samples != req.Samples || pl.Pivot != req.Pivot ||
			pl.Signatures != req.Signatures || pl.Markov != req.Markov ||
			pl.Batch != req.Batch {
			t.Errorf("Resolve(%+v) = %+v, not verbatim", req, pl)
		}
		if pl.Adaptive || pl.FromAccuracy || len(pl.Skipped) != 0 {
			t.Errorf("Resolve(%+v) marked adaptive: %+v", req, pl)
		}
		if pl.Mode() != "fixed" {
			t.Errorf("Mode() = %q, want fixed", pl.Mode())
		}
	}
}

// TestResolveAccuracyProperty checks the Lemma-2 contract: a requested
// (ε, δ) yields exactly R = SampleSize(ε, δ), so R is trivially ≥ the
// bound, and R is monotone non-increasing in both parameters (tighter
// accuracy or confidence can only demand more samples).
func TestResolveAccuracyProperty(t *testing.T) {
	epsGrid := []float64{0.05, 0.1, 0.2, 0.5}
	deltaGrid := []float64{0.01, 0.05, 0.1, 0.5}
	for _, eps := range epsGrid {
		for _, delta := range deltaGrid {
			pl, err := Resolve(Request{Eps: eps, Delta: delta, Samples: 48,
				Pivot: true, Signatures: true, Markov: true, Batch: true})
			if err != nil {
				t.Fatalf("Resolve(eps=%v, delta=%v): %v", eps, delta, err)
			}
			want := stats.SampleSize(eps, delta)
			if pl.Samples != want {
				t.Errorf("Resolve(eps=%v, delta=%v).Samples = %d, want %d", eps, delta, pl.Samples, want)
			}
			if !pl.FromAccuracy || pl.Eps != eps || pl.Delta != delta {
				t.Errorf("accuracy provenance lost: %+v", pl)
			}
			if pl.EffectiveSamples() < want {
				t.Errorf("EffectiveSamples %d < Lemma-2 bound %d", pl.EffectiveSamples(), want)
			}
		}
	}
	// Monotonicity across each grid axis.
	r := func(eps, delta float64) int {
		pl, err := Resolve(Request{Eps: eps, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		return pl.Samples
	}
	for _, delta := range deltaGrid {
		for i := 1; i < len(epsGrid); i++ {
			if r(epsGrid[i], delta) > r(epsGrid[i-1], delta) {
				t.Errorf("R not monotone in eps at delta=%v: R(%v)=%d > R(%v)=%d",
					delta, epsGrid[i], r(epsGrid[i], delta), epsGrid[i-1], r(epsGrid[i-1], delta))
			}
		}
	}
	for _, eps := range epsGrid {
		for i := 1; i < len(deltaGrid); i++ {
			if r(eps, deltaGrid[i]) > r(eps, deltaGrid[i-1]) {
				t.Errorf("R not monotone in delta at eps=%v", eps)
			}
		}
	}
	// The acceptance anchor: (0.1, 0.05) must land on the documented 1107.
	if got := r(0.1, 0.05); got != 1107 {
		t.Errorf("R(0.1, 0.05) = %d, want 1107", got)
	}
}

// TestResolveRejectsBadAccuracy: the planner surfaces invalid (ε, δ) as
// an error, never a panic — that is what lets the HTTP layer answer 400.
func TestResolveRejectsBadAccuracy(t *testing.T) {
	bad := []Request{
		{Eps: -0.1, Delta: 0.05},
		{Eps: 0.1, Delta: 0},  // delta unset while eps is
		{Eps: 0, Delta: 0.05}, // eps unset while delta is
		{Eps: 0.1, Delta: 1.5},
		{Eps: 0.1, Delta: -1},
	}
	for _, req := range bad {
		if _, err := Resolve(req); err == nil {
			t.Errorf("Resolve(%+v): want error", req)
		}
	}
}

// defaultRequest is the all-stages-on fixed pipeline request.
func defaultRequest() Request {
	return Request{Pivot: true, Signatures: true, Markov: true, Batch: true}
}

// TestPlannerWarmup: before MinQueries observations every plan is the
// fixed Resolve plan, no matter how damning the feedback looks.
func TestPlannerWarmup(t *testing.T) {
	p := NewPlanner(Options{MinQueries: 8})
	// Feedback that would justify skipping everything: Lemma 5 never
	// prunes, the filters never fire, the cache absorbs all verification.
	fb := Feedback{
		Candidates: 100, PrunedL5: 0,
		MarkovSeconds: 1, MonteCarloSeconds: 0.0001,
		PointPairsChecked: 1000, PointPairsPruned: 0,
		NodePairsVisited: 1000, NodePairsPruned: 0,
		CacheHits: 99, CacheMisses: 1,
	}
	for i := 0; i < 7; i++ {
		pl, err := p.Plan(defaultRequest())
		if err != nil {
			t.Fatal(err)
		}
		if pl.Adaptive {
			t.Fatalf("plan adaptive after %d < MinQueries observations: %+v", i, pl)
		}
		p.Observe(fb)
	}
	p.Observe(fb)
	pl, err := p.Plan(defaultRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Adaptive {
		t.Fatalf("plan still fixed after warm-up with dead-stage feedback: %+v", pl)
	}
}

// TestPlannerSkipRules drives each decision rule across its threshold.
func TestPlannerSkipRules(t *testing.T) {
	warm := func(p *Planner, fb Feedback) {
		for i := 0; i < 40; i++ {
			p.Observe(fb)
		}
	}
	skipped := func(pl *Plan, stage string) bool {
		for _, s := range pl.Skipped {
			if s == stage {
				return true
			}
		}
		return false
	}

	t.Run("markov skipped when it cannot pay", func(t *testing.T) {
		p := NewPlanner(Options{})
		warm(p, Feedback{Candidates: 100, PrunedL5: 0,
			MarkovSeconds: 1, MonteCarloSeconds: 0.001})
		pl, err := p.Plan(defaultRequest())
		if err != nil {
			t.Fatal(err)
		}
		if pl.Markov || !skipped(pl, "markov_prune") {
			t.Errorf("dead Lemma 5 not skipped: %+v", pl)
		}
	})

	t.Run("markov kept while it pays", func(t *testing.T) {
		p := NewPlanner(Options{})
		// Lemma 5 removes 90% of candidates at 1% of verification cost.
		warm(p, Feedback{Candidates: 100, PrunedL5: 90,
			MarkovSeconds: 0.001, MonteCarloSeconds: 1})
		pl, err := p.Plan(defaultRequest())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Markov || pl.Adaptive {
			t.Errorf("paying Lemma 5 dropped: %+v", pl)
		}
	})

	t.Run("pivot skipped on dead observed selectivity", func(t *testing.T) {
		p := NewPlanner(Options{})
		warm(p, Feedback{Candidates: 10, PrunedL5: 5,
			MarkovSeconds: 0.001, MonteCarloSeconds: 0.01,
			PointPairsChecked: 10000, PointPairsPruned: 1})
		pl, err := p.Plan(defaultRequest())
		if err != nil {
			t.Fatal(err)
		}
		if pl.Pivot || !skipped(pl, "pivot_prune") {
			t.Errorf("dead pivot pruning not skipped: %+v", pl)
		}
	})

	t.Run("pivot prior from section-4 cost when unobserved", func(t *testing.T) {
		p := NewPlanner(Options{})
		// Feedback with no leaf pairs at all: only the §4 prior speaks.
		warm(p, Feedback{Candidates: 10, PrunedL5: 5,
			MarkovSeconds: 0.001, MonteCarloSeconds: 0.01})
		// Vacuous pivots (per-vector cost at the max of 4) → prior 0 → skip.
		pl, err := p.Plan(Request{Pivot: true, Signatures: true, Markov: true, Batch: true,
			MeanPivotCost: 3.999})
		if err != nil {
			t.Fatal(err)
		}
		if pl.Pivot {
			t.Errorf("vacuous-pivot index kept pivot pruning: %+v", pl)
		}
		// Unknown index (MeanPivotCost 0) → never skip on no evidence.
		pl, err = p.Plan(defaultRequest())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Pivot {
			t.Errorf("unknown index skipped pivot pruning on no evidence: %+v", pl)
		}
	})

	t.Run("signatures skipped on dead node selectivity", func(t *testing.T) {
		p := NewPlanner(Options{})
		warm(p, Feedback{Candidates: 10, PrunedL5: 5,
			MarkovSeconds: 0.001, MonteCarloSeconds: 0.01,
			NodePairsVisited: 10000, NodePairsPruned: 1})
		pl, err := p.Plan(defaultRequest())
		if err != nil {
			t.Fatal(err)
		}
		if pl.Signatures || !skipped(pl, "signature") {
			t.Errorf("dead signature filters not skipped: %+v", pl)
		}
	})

	t.Run("batch kernel demoted for narrow queries", func(t *testing.T) {
		p := NewPlanner(Options{})
		warm(p, Feedback{Candidates: 10, PrunedL5: 5,
			MarkovSeconds: 0.001, MonteCarloSeconds: 0.01})
		req := defaultRequest()
		req.QueryGenes = 2
		pl, err := p.Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Batch || !skipped(pl, "batch_kernel") {
			t.Errorf("2-gene query kept the batch kernel: %+v", pl)
		}
		req.QueryGenes = 3
		pl, err = p.Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Batch {
			t.Errorf("3-gene query lost the batch kernel: %+v", pl)
		}
	})
}

// TestPlannerSnapshot: skip decisions are counted and the cost model is
// observable.
func TestPlannerSnapshot(t *testing.T) {
	p := NewPlanner(Options{MinQueries: 1})
	p.Observe(Feedback{Candidates: 100, PrunedL5: 0,
		MarkovSeconds: 1, MonteCarloSeconds: 0.001})
	for i := 0; i < 3; i++ {
		if _, err := p.Plan(defaultRequest()); err != nil {
			t.Fatal(err)
		}
	}
	snap := p.Snapshot()
	if snap.Queries != 1 {
		t.Errorf("Queries = %d, want 1", snap.Queries)
	}
	if snap.Skips["markov_prune"] != 3 {
		t.Errorf("Skips[markov_prune] = %d, want 3", snap.Skips["markov_prune"])
	}
	if snap.Cost.MarkovPerCandidate <= 0 {
		t.Errorf("cost model not populated: %+v", snap.Cost)
	}
}

// TestPlannerCacheDensityPrior: with no hit/miss observations the modeled
// cache hit rate falls back to entries/(entries+vectors).
func TestPlannerCacheDensityPrior(t *testing.T) {
	p := NewPlanner(Options{MinQueries: 1})
	p.Observe(Feedback{Candidates: 10, PrunedL5: 5,
		MarkovSeconds: 0.001, MonteCarloSeconds: 0.01})
	req := defaultRequest()
	req.CacheEntries = 300
	req.DBVectors = 700
	pl, err := p.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pl.Cost.CacheHitRate, 0.3; got != want {
		t.Errorf("CacheHitRate prior = %v, want %v", got, want)
	}
}
