package plan

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// Round-trip property: encode→decode is the identity for every plan
// shape the resolver or planner can produce — fixed and adaptive, both
// inference kernels, with and without an accuracy request.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := &Plan{
			Samples:    rng.Intn(5000),
			Pivot:      rng.Intn(2) == 0,
			Signatures: rng.Intn(2) == 0,
			Markov:     rng.Intn(2) == 0,
			Batch:      rng.Intn(2) == 0, // both kernels: batched and scalar
		}
		if rng.Intn(3) == 0 {
			p.FromAccuracy = true
			p.Eps = 0.05 + rng.Float64()/10
			p.Delta = 0.01 + rng.Float64()/10
		}
		if rng.Intn(2) == 0 {
			p.Adaptive = true
			for _, st := range []string{"pivot_prune", "signature", "markov_prune", "batch_kernel"} {
				if rng.Intn(2) == 0 {
					p.Skipped = append(p.Skipped, st)
				}
			}
			p.Cost = CostModel{
				MarkovPerCandidate:     rng.Float64(),
				MonteCarloPerCandidate: rng.Float64(),
				MarkovPruneFrac:        rng.Float64(),
				PointPruneFrac:         rng.Float64(),
				NodePruneFrac:          rng.Float64(),
				CacheHitRate:           rng.Float64(),
				MeanPivotCost:          rng.Float64() * 4,
			}
		}
		data, err := p.EncodeWire()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeWire(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", p, got)
		}
	}
}

// The resolver's outputs — the plans that actually travel — round-trip
// for both kernel settings.
func TestWireRoundTripResolved(t *testing.T) {
	for _, batch := range []bool{true, false} {
		for _, req := range []Request{
			{Samples: 200, Pivot: true, Signatures: true, Markov: true, Batch: batch},
			{Eps: 0.1, Delta: 0.05, Pivot: true, Signatures: true, Markov: true, Batch: batch},
		} {
			p, err := Resolve(req)
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			data, err := p.EncodeWire()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeWire(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, p) {
				t.Fatalf("resolved plan diverged: %+v vs %+v", p, got)
			}
		}
	}
}

func TestWireVersionMismatch(t *testing.T) {
	p := &Plan{Samples: 100, Pivot: true, Signatures: true, Markov: true, Batch: true}
	data, err := p.EncodeWire()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = WireVersion + 1
	bumped, _ := json.Marshal(raw)
	if _, err := DecodeWire(bumped); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("want ErrWireVersion, got %v", err)
	}
	// A missing version (old peer predating the format) is a mismatch too,
	// never a silent zero-value plan.
	delete(raw, "version")
	unversioned, _ := json.Marshal(raw)
	if _, err := DecodeWire(unversioned); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("want ErrWireVersion for missing version, got %v", err)
	}
}

func TestWireUnknownFieldRejected(t *testing.T) {
	data := []byte(`{"version":1,"samples":10,"pivot":true,"signatures":true,"markov":true,"batch":true,"surprise":1}`)
	if _, err := DecodeWire(data); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeWire([]byte(`{not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
