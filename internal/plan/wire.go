package plan

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Canonical wire encoding of a resolved Plan (DESIGN.md §15). The
// distributed coordinator resolves one plan per query and ships it in
// every shard-server request envelope, so each shard executes the
// identical decisions the in-process scatter would share by pointer. The
// encoding is versioned and decoding is strict: an unknown field or a
// version mismatch between coordinator and shard server is an explicit
// error, never a silently zero-valued plan — executing a half-understood
// plan would break the cross-process determinism contract.

// WireVersion is the current plan wire-format version. Bump it whenever
// a field changes meaning; mixed-version clusters then fail loudly at
// decode time instead of diverging.
const WireVersion = 1

// ErrWireVersion reports a plan encoded under a different wire version
// than this binary speaks. Matchable with errors.Is.
var ErrWireVersion = errors.New("plan: wire version mismatch")

// wirePlan is the JSON shape of an encoded Plan. Every Plan field
// appears explicitly; the version travels in-band.
type wirePlan struct {
	Version      int        `json:"version"`
	Samples      int        `json:"samples"`
	FromAccuracy bool       `json:"fromAccuracy,omitempty"`
	Eps          float64    `json:"eps,omitempty"`
	Delta        float64    `json:"delta,omitempty"`
	Pivot        bool       `json:"pivot"`
	Signatures   bool       `json:"signatures"`
	Markov       bool       `json:"markov"`
	Batch        bool       `json:"batch"`
	Adaptive     bool       `json:"adaptive,omitempty"`
	Skipped      []string   `json:"skipped,omitempty"`
	Cost         *CostModel `json:"cost,omitempty"`
}

// EncodeWire serializes a resolved plan for the request envelope.
func (p *Plan) EncodeWire() ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("plan: encoding nil plan")
	}
	w := wirePlan{
		Version:      WireVersion,
		Samples:      p.Samples,
		FromAccuracy: p.FromAccuracy,
		Eps:          p.Eps,
		Delta:        p.Delta,
		Pivot:        p.Pivot,
		Signatures:   p.Signatures,
		Markov:       p.Markov,
		Batch:        p.Batch,
		Adaptive:     p.Adaptive,
		Skipped:      p.Skipped,
	}
	if p.Cost != (CostModel{}) {
		cost := p.Cost
		w.Cost = &cost
	}
	return json.Marshal(w)
}

// DecodeWire deserializes a plan encoded by EncodeWire. Decoding is
// strict: unknown fields are rejected (a newer coordinator cannot smuggle
// decisions past an older shard server), and a version other than
// WireVersion returns an error wrapping ErrWireVersion with both versions
// named — callers must treat it as a deployment error, not fall back to
// a zero-value plan.
func DecodeWire(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wirePlan
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("plan: decoding wire plan: %w", err)
	}
	if w.Version != WireVersion {
		return nil, fmt.Errorf("%w: got version %d, this binary speaks %d",
			ErrWireVersion, w.Version, WireVersion)
	}
	p := &Plan{
		Samples:      w.Samples,
		FromAccuracy: w.FromAccuracy,
		Eps:          w.Eps,
		Delta:        w.Delta,
		Pivot:        w.Pivot,
		Signatures:   w.Signatures,
		Markov:       w.Markov,
		Batch:        w.Batch,
		Adaptive:     w.Adaptive,
		Skipped:      w.Skipped,
	}
	if w.Cost != nil {
		p.Cost = *w.Cost
	}
	return p, nil
}
