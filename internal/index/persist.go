package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/pivot"
	"github.com/imgrn/imgrn/internal/rstar"
)

// Binary index format (little-endian):
//
//	magic    [8]byte  "IMGRNIX1"
//	d        uint32   pivots per matrix
//	bits     uint32   signature width
//	pageSize uint32
//	buffer   uint32   LRU buffer pages
//	maxFill  uint32   R*-tree node capacity
//	sources  uint32   number of embedded matrices
//	repeat sources times:
//	  source   int64
//	  genes    uint32 (n_i)
//	  pivots   d × int32 (column indices)
//	  X, Y     n_i × d float64 each
//	items    uint64   leaf point count
//	repeat items times:
//	  point  (2d+1) × float64
//	  ref    uint64
//
// The R*-tree is rebuilt deterministically by bulk loading the stored
// points; node signatures, page mapping and the inverted file are
// recomputed at load time (they are cheap relative to the Monte Carlo
// embedding, which is what persistence avoids repeating).

var idxMagic = [8]byte{'I', 'M', 'G', 'R', 'N', 'I', 'X', '1'}

// Save serializes the index (embeddings + embedded points + options).
func (x *Index) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(idxMagic[:]); err != nil {
		return err
	}
	hdr := []uint32{
		uint32(x.opts.D), uint32(x.opts.Bits), uint32(x.opts.PageSize),
		uint32(x.opts.BufferPages), uint32(x.opts.MaxFill),
		uint32(len(x.embeddings)),
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	// Embeddings, ordered by database iteration order for determinism.
	for _, m := range x.db.Matrices() {
		emb, ok := x.embeddings[m.Source]
		if !ok {
			continue
		}
		if err := writeEmbedding(bw, m.Source, emb); err != nil {
			return err
		}
	}
	// Leaf items via tree walk.
	var items []rstar.Item
	x.tree.Walk(func(n *rstar.Node) bool {
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				items = append(items, n.Item(i))
			}
		}
		return true
	})
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(items))); err != nil {
		return err
	}
	dim := 2*x.opts.D + 1
	buf := make([]byte, 8*dim+8)
	for _, it := range items {
		for k, v := range it.Point {
			binary.LittleEndian.PutUint64(buf[8*k:], math.Float64bits(v))
		}
		binary.LittleEndian.PutUint64(buf[8*dim:], it.Ref)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeEmbedding(w io.Writer, source int, emb *pivot.Embedding) error {
	if err := binary.Write(w, binary.LittleEndian, int64(source)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(emb.X))); err != nil {
		return err
	}
	piv := make([]int32, len(emb.PivotIdx))
	for i, p := range emb.PivotIdx {
		piv[i] = int32(p)
	}
	if err := binary.Write(w, binary.LittleEndian, piv); err != nil {
		return err
	}
	for _, rows := range [][][]float64{emb.X, emb.Y} {
		for _, row := range rows {
			if err := binary.Write(w, binary.LittleEndian, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reconstructs an index previously written by Save, attached to db
// (which must be the same database the index was built over).
func Load(r io.Reader, db *gene.Database) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if magic != idxMagic {
		return nil, fmt.Errorf("index: bad magic %q, not an IM-GRN index file", magic[:])
	}
	hdr := make([]uint32, 6)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	opts := Options{
		D: int(hdr[0]), Bits: int(hdr[1]), PageSize: int(hdr[2]),
		BufferPages: int(hdr[3]), MaxFill: int(hdr[4]),
	}.withDefaults()
	nSources := int(hdr[5])
	const maxPlausible = 1 << 28
	if opts.D > 64 || nSources > maxPlausible {
		return nil, fmt.Errorf("index: implausible header (d=%d, sources=%d)", opts.D, nSources)
	}
	start := time.Now()
	idx := &Index{
		db:         db,
		opts:       opts,
		embeddings: make(map[int]*pivot.Embedding, nSources),
		inverted:   nil, // rebuilt below
		acc:        pagestore.New(opts.PageSize, opts.BufferPages),
		heap:       make(map[int]heapInfo, nSources),
	}
	idx.store = pagestore.NewStore(idx.acc)
	for i := 0; i < nSources; i++ {
		source, emb, err := readEmbedding(br, opts.D)
		if err != nil {
			return nil, fmt.Errorf("index: reading embedding %d: %w", i, err)
		}
		m := db.BySource(source)
		if m == nil {
			return nil, fmt.Errorf("index: file references source %d absent from database", source)
		}
		if len(emb.X) != m.NumGenes() {
			return nil, fmt.Errorf("index: source %d has %d embedded genes, database matrix has %d",
				source, len(emb.X), m.NumGenes())
		}
		idx.embeddings[source] = emb
		first := idx.store.Append(encodeStdColumns(m))
		idx.heap[source] = heapInfo{first: first, colBytes: m.Samples() * 8}
	}
	var itemCount uint64
	if err := binary.Read(br, binary.LittleEndian, &itemCount); err != nil {
		return nil, fmt.Errorf("index: reading item count: %w", err)
	}
	if itemCount > maxPlausible {
		return nil, fmt.Errorf("index: implausible item count %d", itemCount)
	}
	dim := 2*opts.D + 1
	items := make([]rstar.Item, itemCount)
	buf := make([]byte, 8*dim+8)
	for i := range items {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("index: reading item %d: %w", i, err)
		}
		pt := make([]float64, dim)
		for k := range pt {
			pt[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*k:]))
		}
		items[i] = rstar.Item{Point: pt, Ref: binary.LittleEndian.Uint64(buf[8*dim:])}
	}
	tree, err := rstar.NewTree(treeConfig(dim, opts.MaxFill))
	if err != nil {
		return nil, err
	}
	if err := tree.BulkLoad(items); err != nil {
		return nil, err
	}
	idx.tree = tree
	idx.stats.Pages = uint64(tree.AssignPages(idx.acc))
	idx.rebuildInvertedFile()
	idx.buildSignatures()
	idx.stats.Elapsed = time.Since(start)
	idx.stats.Vectors = len(items)
	idx.stats.TreeNodes = tree.NodeCount()
	idx.stats.TreeHeight = tree.Height()
	idx.acc.ResetStats()
	return idx, nil
}

// RestoreOptions replaces a loaded index's construction options with the
// full option set persisted by a higher layer (the durable store's
// manifest). The IMGRNIX1 header stores only the five structural fields
// (d, bits, pageSize, buffer, maxFill); the estimator fields — Seed,
// Samples, Selection, RandomPivots — are not in the file, yet online
// AddMatrix needs them to embed new matrices with the same
// (Seed, Source)-derived randomness as the original build. The
// structural fields of opts must match the loaded header.
func (x *Index) RestoreOptions(opts Options) error {
	opts = opts.withDefaults()
	if opts.D != x.opts.D || opts.Bits != x.opts.Bits ||
		opts.PageSize != x.opts.PageSize || opts.BufferPages != x.opts.BufferPages ||
		opts.MaxFill != x.opts.MaxFill {
		return fmt.Errorf("index: restored options (d=%d bits=%d page=%d buf=%d fill=%d) disagree with snapshot header (d=%d bits=%d page=%d buf=%d fill=%d)",
			opts.D, opts.Bits, opts.PageSize, opts.BufferPages, opts.MaxFill,
			x.opts.D, x.opts.Bits, x.opts.PageSize, x.opts.BufferPages, x.opts.MaxFill)
	}
	x.opts = opts
	return nil
}

func readEmbedding(r io.Reader, d int) (int, *pivot.Embedding, error) {
	var source int64
	if err := binary.Read(r, binary.LittleEndian, &source); err != nil {
		return 0, nil, err
	}
	var genes uint32
	if err := binary.Read(r, binary.LittleEndian, &genes); err != nil {
		return 0, nil, err
	}
	if genes > 1<<24 {
		return 0, nil, fmt.Errorf("implausible gene count %d", genes)
	}
	piv := make([]int32, d)
	if err := binary.Read(r, binary.LittleEndian, piv); err != nil {
		return 0, nil, err
	}
	emb := &pivot.Embedding{
		D:        d,
		PivotIdx: make([]int, d),
		X:        make([][]float64, genes),
		Y:        make([][]float64, genes),
	}
	for i, p := range piv {
		emb.PivotIdx[i] = int(p)
	}
	for _, rows := range []*[][]float64{&emb.X, &emb.Y} {
		for j := range *rows {
			row := make([]float64, d)
			if err := binary.Read(r, binary.LittleEndian, row); err != nil {
				return 0, nil, err
			}
			(*rows)[j] = row
		}
	}
	return int(source), emb, nil
}

func (x *Index) rebuildInvertedFile() {
	x.inverted = newInvertedFromDB(x.db, x.opts.Bits)
}

// SaveFile writes the index to the named file.
func (x *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from the named file.
func LoadFile(path string, db *gene.Database) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, db)
}
