package index

import (
	"fmt"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/rstar"
)

// AddMatrix indexes a new data source online: the matrix is added to the
// database, embedded with the same (Seed, Source)-derived randomness the
// offline build uses — so an incrementally-grown index answers queries
// exactly like a fresh build over the enlarged database — and its points
// are inserted into the R*-tree via the R* insertion algorithm. Node
// signatures are recomputed bottom-up (they are OR-aggregates and cheap
// relative to the Monte Carlo embedding).
func (x *Index) AddMatrix(m *gene.Matrix) error {
	if m == nil || m.NumGenes() == 0 {
		return fmt.Errorf("index: AddMatrix requires a non-empty matrix")
	}
	if x.db.BySource(m.Source) != nil {
		return fmt.Errorf("index: source %d already indexed", m.Source)
	}
	emb, cost, err := embedOne(m, x.opts)
	if err != nil {
		return err
	}
	if err := x.db.Add(m); err != nil {
		return err
	}
	x.embeddings[m.Source] = emb
	x.stats.PivotCostSum += cost

	dim := 2*x.opts.D + 1
	for j := 0; j < m.NumGenes(); j++ {
		pt := make([]float64, dim)
		emb.Point(j, pt[:2*x.opts.D])
		pt[dim-1] = float64(m.Gene(j))
		if err := x.tree.Insert(rstar.Item{Point: pt, Ref: PackRef(m.Source, j)}); err != nil {
			return err
		}
	}
	for _, g := range m.Genes() {
		x.inverted.Add(g, m.Source)
	}
	first := x.store.Append(encodeStdColumns(m))
	x.heap[m.Source] = heapInfo{first: first, colBytes: m.Samples() * 8}

	// Splits may have created nodes without pages/signatures; refresh both.
	x.tree.Walk(func(n *rstar.Node) bool {
		if n.Pages() == 0 {
			id, pages := x.acc.Allocate(x.tree.NodeBytes(n))
			n.SetPages(id, pages)
			x.stats.Pages += uint64(pages)
		}
		return true
	})
	x.buildSignatures()

	x.stats.Vectors += m.NumGenes()
	x.stats.TreeNodes = x.tree.NodeCount()
	x.stats.TreeHeight = x.tree.Height()
	return nil
}

// RemoveMatrix drops a data source from the index and the database: its
// points are deleted from the R*-tree, its embedding and heap mapping are
// discarded, and the inverted file and node signatures are rebuilt. The
// heap pages themselves are not reclaimed (the simulated store is
// append-only, as a log-structured heap would be).
func (x *Index) RemoveMatrix(source int) error {
	m := x.db.BySource(source)
	if m == nil {
		return fmt.Errorf("index: source %d not indexed", source)
	}
	emb, ok := x.embeddings[source]
	if !ok {
		return fmt.Errorf("index: source %d has no embedding", source)
	}
	dim := 2*x.opts.D + 1
	for j := 0; j < m.NumGenes(); j++ {
		pt := make([]float64, dim)
		emb.Point(j, pt[:2*x.opts.D])
		pt[dim-1] = float64(m.Gene(j))
		if !x.tree.Delete(rstar.Item{Point: pt, Ref: PackRef(source, j)}) {
			return fmt.Errorf("index: point for source %d gene %d missing from tree", source, j)
		}
	}
	delete(x.embeddings, source)
	delete(x.heap, source)
	x.db.Remove(source)
	x.inverted = newInvertedFromDB(x.db, x.opts.Bits)

	// Deletion may have restructured nodes; refresh pages and signatures.
	x.tree.Walk(func(n *rstar.Node) bool {
		if n.Pages() == 0 {
			id, pages := x.acc.Allocate(x.tree.NodeBytes(n))
			n.SetPages(id, pages)
			x.stats.Pages += uint64(pages)
		}
		return true
	})
	x.buildSignatures()

	x.stats.Vectors -= m.NumGenes()
	x.stats.TreeNodes = x.tree.NodeCount()
	x.stats.TreeHeight = x.tree.Height()
	return nil
}
