// Package index implements the IM-GRN indexing mechanism of Section 5.1:
// every gene feature vector of every database matrix is embedded via its
// matrix's pivots into a (2d+1)-dimensional point (2d pivot coordinates
// plus the integer gene ID), the points are stored in an R*-tree whose
// nodes carry bit-vector signatures of the gene IDs (V_f) and data-source
// IDs (V_d) beneath them, and an inverted bit-vector file IF maps each gene
// to the signature of the sources containing it. Index nodes and matrix
// columns are mapped onto simulated disk pages so queries report the I/O
// cost metric of Section 6.
//
// # Persistence
//
// Save/Load serialize a built index in the little-endian "IMGRNIX1"
// format so the Monte Carlo embedding phase runs once. The header after
// the 8-byte magic is five uint32 structural fields — d (pivots per
// matrix), bits (signature width B), pageSize, buffer (LRU buffer-pool
// pages) and maxFill (R*-tree node capacity) — followed by a uint32
// count of embedded sources; then per source the pivot columns and X/Y
// embedding coordinates, and finally the flat list of (2d+1)-dim leaf
// points. Only those five Options fields are structural enough to store:
// behavioural options (Seed, Samples, Workers, pivot selection) are not
// in the file, so a loaded index cannot embed new matrices until
// RestoreOptions reinstalls them — the durable store (internal/shard)
// persists the full Options in its MANIFEST for exactly this purpose.
// The R*-tree itself is not stored; it is rebuilt deterministically by
// bulk-loading the points, and signatures, page mapping and the inverted
// file are recomputed at load time (all cheap relative to embedding).
// See persist.go for the byte-level layout and DESIGN.md §12 for the
// snapshot container that wraps this format.
package index

import (
	"fmt"
	"math"
	"time"

	"github.com/imgrn/imgrn/internal/bitvec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/pivot"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/stats"
)

// Options configures index construction.
type Options struct {
	// D is the number of pivots per matrix (Table 2 default: 2).
	D int
	// Samples is the Monte Carlo sample count for the expected randomized
	// distances of the embedding (stats.DefaultSamples when 0).
	Samples int
	// Bits is the bit-vector signature width B (bitvec.DefaultBits when 0).
	Bits int
	// Seed drives pivot selection and embedding estimation.
	Seed uint64
	// PageSize is the simulated disk page size (pagestore.DefaultPageSize
	// when 0).
	PageSize int
	// BufferPages is the LRU buffer pool capacity in pages (0 = unbuffered,
	// every node touch is one page access).
	BufferPages int
	// MaxFill is the R*-tree node capacity (rstar.DefaultMaxFill when 0).
	MaxFill int
	// Selection tunes the Figure-3 pivot search (pivot.DefaultSelection
	// when zero).
	Selection pivot.SelectionParams
	// RandomPivots skips the cost-model search and picks pivots uniformly
	// at random — the ablation baseline for the Figure-3 algorithm.
	RandomPivots bool
	// Workers bounds the parallelism of the per-matrix embedding work
	// during construction (runtime.NumCPU() when 0, 1 forces serial).
	// Results are deterministic regardless of worker count: every matrix
	// derives its randomness from (Seed, Source) alone.
	Workers int
	// NaturalSTRLayout bulk-loads with plain coordinate-order STR instead
	// of gene-ID-primary clustering — the ablation baseline showing why
	// the paper includes the gene dimension in the index (Section 5.1).
	NaturalSTRLayout bool
}

func (o Options) withDefaults() Options {
	if o.D <= 0 {
		o.D = 2
	}
	if o.Samples <= 0 {
		o.Samples = stats.DefaultSamples
	}
	if o.Bits <= 0 {
		o.Bits = bitvec.DefaultBits
	}
	if o.PageSize <= 0 {
		o.PageSize = pagestore.DefaultPageSize
	}
	if o.MaxFill <= 0 {
		o.MaxFill = rstar.DefaultMaxFill
	}
	if o.Selection == (pivot.SelectionParams{}) {
		o.Selection = pivot.DefaultSelection
	}
	return o
}

// signature is the node augmentation: V_f and V_d of Section 5.1.
type signature struct {
	f *bitvec.Vector // gene-ID signature
	d *bitvec.Vector // data-source signature
}

// heapInfo locates one matrix's column data in the simulated heap file.
type heapInfo struct {
	first    pagestore.PageID
	colBytes int
}

// encodeStdColumns serializes a matrix's standardized columns back to back
// (column j at byte offset j·l·8) for the heap store.
func encodeStdColumns(m *gene.Matrix) []byte {
	l := m.Samples()
	buf := make([]byte, m.NumGenes()*l*8)
	for j := 0; j < m.NumGenes(); j++ {
		col := m.StdCol(j)
		base := j * l * 8
		for i, v := range col {
			putFloat64(buf[base+8*i:], v)
		}
	}
	return buf
}

func putFloat64(b []byte, v float64) {
	bits := math.Float64bits(v)
	for k := 0; k < 8; k++ {
		b[k] = byte(bits >> (8 * k))
	}
}

func getFloat64(b []byte) float64 {
	var bits uint64
	for k := 0; k < 8; k++ {
		bits |= uint64(b[k]) << (8 * k)
	}
	return math.Float64frombits(bits)
}

// BuildStats reports index construction effort (Figure 13).
type BuildStats struct {
	Elapsed      time.Duration
	Vectors      int
	TreeNodes    int
	TreeHeight   int
	Pages        uint64
	PivotCostSum float64 // Σ_i T_i after selection, diagnostic
}

// Index is the composite IM-GRN index over one database.
type Index struct {
	db   *gene.Database
	opts Options

	tree       *rstar.Tree
	embeddings map[int]*pivot.Embedding // by data source ID
	inverted   *bitvec.InvertedFile
	acc        *pagestore.Accountant
	store      *pagestore.Store // heap file holding standardized columns
	heap       map[int]heapInfo

	stats BuildStats
}

// PackRef encodes (source, col) into an item reference.
func PackRef(source, col int) uint64 {
	return uint64(uint32(source))<<32 | uint64(uint32(col))
}

// UnpackRef decodes an item reference into (source, col). Source IDs are
// sign-extended so negative sources (e.g. organism base matrices) round-trip.
func UnpackRef(ref uint64) (source, col int) {
	return int(int32(ref >> 32)), int(int32(ref))
}

// Build constructs the index over db.
func Build(db *gene.Database, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	start := time.Now()

	idx := &Index{
		db:         db,
		opts:       opts,
		embeddings: make(map[int]*pivot.Embedding, db.Len()),
		inverted:   newInvertedFromDB(db, opts.Bits),
		acc:        pagestore.New(opts.PageSize, opts.BufferPages),
		heap:       make(map[int]heapInfo, db.Len()),
	}
	idx.store = pagestore.NewStore(idx.acc)

	dim := 2*opts.D + 1
	cfg := treeConfig(dim, opts.MaxFill)
	if opts.NaturalSTRLayout {
		cfg = rstar.Config{Dim: dim, MaxFill: opts.MaxFill}
	}
	tree, err := rstar.NewTree(cfg)
	if err != nil {
		return nil, err
	}
	idx.tree = tree

	results, err := embedAll(db, opts)
	if err != nil {
		return nil, err
	}
	var items []rstar.Item
	for i, m := range db.Matrices() {
		if m.NumGenes() == 0 {
			continue
		}
		emb := results[i].emb
		idx.stats.PivotCostSum += results[i].cost
		idx.embeddings[m.Source] = emb
		for j := 0; j < m.NumGenes(); j++ {
			pt := make([]float64, dim)
			emb.Point(j, pt[:2*opts.D])
			pt[dim-1] = float64(m.Gene(j))
			items = append(items, rstar.Item{Point: pt, Ref: PackRef(m.Source, j)})
		}
		// Lay the matrix's standardized columns out in the heap file.
		first := idx.store.Append(encodeStdColumns(m))
		idx.heap[m.Source] = heapInfo{first: first, colBytes: m.Samples() * 8}
	}
	if err := tree.BulkLoad(items); err != nil {
		return nil, err
	}
	idx.stats.Pages = uint64(tree.AssignPages(idx.acc))
	idx.buildSignatures()

	idx.stats.Elapsed = time.Since(start)
	idx.stats.Vectors = len(items)
	idx.stats.TreeNodes = tree.NodeCount()
	idx.stats.TreeHeight = tree.Height()
	idx.acc.ResetStats() // construction I/O is not query I/O
	return idx, nil
}

// treeConfig is the R*-tree configuration of the IM-GRN index: the
// gene-ID coordinate (the last dimension) is the primary bulk-loading
// axis, packed fully sorted, so nodes span tight gene-ID ranges — the
// paper's rationale for including the gene dimension ("group those genes
// with the same gene names/IDs together in the index, in order to reduce
// the search cost", Section 5.1). The traversal prunes node pairs whose
// gene ranges cannot contain the query genes.
func treeConfig(dim, maxFill int) rstar.Config {
	order := make([]int, dim)
	order[0] = dim - 1 // gene ID first
	for i := 1; i < dim; i++ {
		order[i] = i - 1
	}
	return rstar.Config{Dim: dim, MaxFill: maxFill, AxisOrder: order, PrimaryAxisFull: true}
}

// newInvertedFromDB builds the inverted bit-vector file IF directly from
// the database contents (Section 5.1).
func newInvertedFromDB(db *gene.Database, bits int) *bitvec.InvertedFile {
	inv := bitvec.NewInvertedFile(bits)
	for _, m := range db.Matrices() {
		for _, g := range m.Genes() {
			inv.Add(g, m.Source)
		}
	}
	return inv
}

// buildSignatures computes V_f and V_d bottom-up (bit-OR aggregation).
func (x *Index) buildSignatures() {
	b := x.opts.Bits
	x.tree.WalkBottomUp(func(n *rstar.Node) {
		sig := signature{f: bitvec.New(b), d: bitvec.New(b)}
		for i := 0; i < n.NumEntries(); i++ {
			if n.IsLeaf() {
				it := n.Item(i)
				source, _ := UnpackRef(it.Ref)
				g := gene.ID(int32(it.Point[len(it.Point)-1]))
				sig.f.Set(bitvec.HashGene(g, b))
				sig.d.Set(bitvec.HashSource(source, b))
			} else {
				child := n.Child(i).Aug.(signature)
				sig.f.OrInPlace(child.f)
				sig.d.OrInPlace(child.d)
			}
		}
		n.Aug = sig
	})
}

// DB returns the underlying database.
func (x *Index) DB() *gene.Database { return x.db }

// Options returns the (defaulted) construction options.
func (x *Index) Options() Options { return x.opts }

// D returns the pivot count per matrix.
func (x *Index) D() int { return x.opts.D }

// Bits returns the signature width B.
func (x *Index) Bits() int { return x.opts.Bits }

// Tree exposes the R*-tree for traversal.
func (x *Index) Tree() *rstar.Tree { return x.tree }

// Embedding returns the pivot embedding of the matrix with the given data
// source ID, or nil.
func (x *Index) Embedding(source int) *pivot.Embedding { return x.embeddings[source] }

// Inverted returns the inverted bit-vector file IF.
func (x *Index) Inverted() *bitvec.InvertedFile { return x.inverted }

// Accountant returns the I/O accountant shared by index and heap pages.
// It is the allocation namespace and the construction-time counter; query
// paths account I/O through per-query Readers (NewReader) instead, so
// concurrent queries never share a mutable counter.
func (x *Index) Accountant() *pagestore.Accountant { return x.acc }

// NewReader returns a fresh per-query I/O reader over the index's page
// namespace. Each reader starts with a cold private buffer pool of the
// configured capacity, preserving the per-query I/O-cost metric of
// Section 6.1 under concurrency.
func (x *Index) NewReader() *pagestore.Reader { return x.acc.NewReader() }

// Stats returns construction statistics.
func (x *Index) Stats() BuildStats { return x.stats }

// NodeSignature returns the V_f/V_d signatures of a tree node.
func (x *Index) NodeSignature(n *rstar.Node) (f, d *bitvec.Vector) {
	sig := n.Aug.(signature)
	return sig.f, sig.d
}

// TouchNode charges one read of node n to the shared accountant.
func (x *Index) TouchNode(n *rstar.Node) { rstar.TouchNode(x.acc, n) }

// TouchNodeTo charges one read of node n to the given toucher (typically a
// per-query reader).
func (x *Index) TouchNodeTo(to pagestore.Toucher, n *rstar.Node) { rstar.TouchNode(to, n) }

// FetchStdColumn reads the standardized feature vector of column col of
// the given source from the simulated heap file — real byte movement that
// is charged as page I/O — appending the decoded values to dst and
// returning the result. The charge goes to the shared accountant; query
// paths use FetchStdColumnTo with a per-query reader.
func (x *Index) FetchStdColumn(source, col int, dst []float64) ([]float64, error) {
	return x.FetchStdColumnTo(x.acc, source, col, dst)
}

// FetchStdColumnTo is FetchStdColumn with the page charges billed to an
// explicit toucher. Concurrent calls with distinct touchers are safe while
// the index is not being mutated.
func (x *Index) FetchStdColumnTo(to pagestore.Toucher, source, col int, dst []float64) ([]float64, error) {
	h, ok := x.heap[source]
	if !ok {
		return nil, fmt.Errorf("index: source %d not in heap", source)
	}
	raw := make([]byte, h.colBytes)
	if err := x.store.ReadAtTo(to, h.first, col*h.colBytes, h.colBytes, raw); err != nil {
		return nil, fmt.Errorf("index: fetching column %d of source %d: %w", col, source, err)
	}
	l := h.colBytes / 8
	if cap(dst) < l {
		dst = make([]float64, l)
	}
	dst = dst[:l]
	for i := range dst {
		dst[i] = getFloat64(raw[8*i:])
	}
	return dst, nil
}

// ChargeColumnRead charges the heap-page accesses needed to read column
// col of the matrix from the given source during refinement, without
// materializing the bytes (used by engines that keep vectors in memory).
func (x *Index) ChargeColumnRead(source, col int) {
	h, ok := x.heap[source]
	if !ok {
		return
	}
	ps := x.acc.PageSize()
	startByte := col * h.colBytes
	endByte := startByte + h.colBytes
	firstPage := h.first + pagestore.PageID(startByte/ps)
	lastPage := h.first + pagestore.PageID((endByte-1)/ps)
	x.acc.TouchRange(firstPage, int(lastPage-firstPage)+1)
}

// IndexPrunable implements Lemma 6 on a pair of node MBRs: given that node
// ea may contain the query-side gene Xs and node eb the partner gene Xt,
// the pair is prunable when some pivot dimension w satisfies
//
//	E_by^+[w] ≤ γ · ( D_lb − E_ax^+[w] ),
//
// where D_lb generalizes the paper's max_r(E_bx^-[r] − E_ax^+[r]) to the
// coordinate-gap lower bound on the pairwise distance (and, for the
// default two-sided measure, on the |cor|-equivalent distance using the
// coordinate-sum upper bound). The condition is checked in both
// randomization directions; a pruned pair has ub_P ≤ γ for every contained
// same-source (Xs, Xt) pair, so no true edge is lost.
func IndexPrunable(ea, eb rstar.Rect, d int, gamma float64, oneSided bool) bool {
	// Lower bound on dist(Xs, Xt) valid for every pair: per-coordinate
	// interval gap, maximized over pivot coordinates.
	lbd := 0.0
	for r := 0; r < d; r++ {
		gap := eb.Min[2*r] - ea.Max[2*r]
		if g2 := ea.Min[2*r] - eb.Max[2*r]; g2 > gap {
			gap = g2
		}
		if gap > lbd {
			lbd = gap
		}
	}
	dlb := lbd
	if !oneSided {
		ubd := math.Inf(1)
		for r := 0; r < d; r++ {
			if v := ea.Max[2*r] + eb.Max[2*r]; v < ubd {
				ubd = v
			}
		}
		alt2 := 4 - ubd*ubd
		if alt2 < 0 {
			alt2 = 0
		}
		if alt := math.Sqrt(alt2); alt < dlb {
			dlb = alt
		}
	}
	for w := 0; w < d; w++ {
		if eb.Max[2*w+1] <= gamma*(dlb-ea.Max[2*w]) {
			return true
		}
		if ea.Max[2*w+1] <= gamma*(dlb-eb.Max[2*w]) {
			return true
		}
	}
	return false
}

// PointUpperBound computes the pivot-based probability upper bound from
// two embedded (2d+1)-dimensional leaf points of the same data source.
func PointUpperBound(ps, pt []float64, d int, oneSided bool) float64 {
	xs := make([]float64, d)
	ys := make([]float64, d)
	xt := make([]float64, d)
	yt := make([]float64, d)
	for r := 0; r < d; r++ {
		xs[r], ys[r] = ps[2*r], ps[2*r+1]
		xt[r], yt[r] = pt[2*r], pt[2*r+1]
	}
	return pivot.UpperBoundCoords(xs, ys, xt, yt, oneSided)
}
