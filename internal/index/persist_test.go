package index

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset(t, 20, 50)
	built, err := Build(ds.DB, Options{D: 2, Samples: 32, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds.DB)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Tree().Size() != built.Tree().Size() {
		t.Errorf("tree size %d != %d", loaded.Tree().Size(), built.Tree().Size())
	}
	if loaded.D() != built.D() || loaded.Bits() != built.Bits() {
		t.Error("options not preserved")
	}
	for _, m := range ds.DB.Matrices() {
		be := built.Embedding(m.Source)
		le := loaded.Embedding(m.Source)
		if le == nil {
			t.Fatalf("embedding for source %d lost", m.Source)
		}
		for j := range be.X {
			for r := range be.X[j] {
				if be.X[j][r] != le.X[j][r] || be.Y[j][r] != le.Y[j][r] {
					t.Fatalf("embedding coords differ at source %d gene %d pivot %d", m.Source, j, r)
				}
			}
		}
		for r := range be.PivotIdx {
			if be.PivotIdx[r] != le.PivotIdx[r] {
				t.Fatal("pivot indices differ")
			}
		}
	}
	if msg := loaded.Tree().CheckInvariants(); msg != "" {
		t.Errorf("loaded tree invariants: %s", msg)
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := smallDataset(t, 8, 51)
	built, err := Build(ds.DB, Options{D: 1, Samples: 16, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.imgrn")
	if err := built.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, ds.DB)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Vectors != built.Stats().Vectors {
		t.Error("vector count differs after file round trip")
	}
}

func TestLoadBadMagic(t *testing.T) {
	ds := smallDataset(t, 2, 52)
	if _, err := Load(bytes.NewReader([]byte("NOTANIDXnnnnnnnnnnnn")), ds.DB); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestLoadTruncated(t *testing.T) {
	ds := smallDataset(t, 5, 53)
	built, err := Build(ds.DB, Options{D: 1, Samples: 8, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/3]), ds.DB); err == nil {
		t.Error("truncated index should fail")
	}
}

func TestLoadWrongDatabase(t *testing.T) {
	ds := smallDataset(t, 5, 54)
	built, err := Build(ds.DB, Options{D: 1, Samples: 8, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := smallDataset(t, 3, 999) // different sources/shapes
	if _, err := Load(&buf, other.DB); err == nil {
		t.Error("index over a different database should be rejected")
	}
}

// TestBuildDeterministicAcrossWorkers: worker count must not change the
// built index.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	ds := smallDataset(t, 15, 55)
	serial, err := Build(ds.DB, Options{D: 2, Samples: 16, Seed: 55, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(ds.DB, Options{D: 2, Samples: 16, Seed: 55, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ds.DB.Matrices() {
		se := serial.Embedding(m.Source)
		pe := parallel.Embedding(m.Source)
		for j := range se.X {
			for r := range se.X[j] {
				if se.X[j][r] != pe.X[j][r] || se.Y[j][r] != pe.Y[j][r] {
					t.Fatalf("embeddings differ between worker counts (source %d)", m.Source)
				}
			}
		}
	}
	if serial.Tree().Size() != parallel.Tree().Size() {
		t.Error("tree sizes differ between worker counts")
	}
}

// TestLoadCorruptEmbeddingSection: header claims more sources than the
// stream carries, or a gene count beyond the cap — both must fail cleanly.
func TestLoadCorruptEmbeddingSection(t *testing.T) {
	ds := smallDataset(t, 3, 56)
	built, err := Build(ds.DB, Options{D: 1, Samples: 8, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bump the source count in the header (offset: 8 magic + 5*4 header
	// words; count is the 6th uint32).
	mutated := append([]byte(nil), data...)
	mutated[8+5*4] = 0xEE
	if _, err := Load(bytes.NewReader(mutated), ds.DB); err == nil {
		t.Error("inflated source count should fail")
	}
	// Corrupt a gene count inside the first embedding record
	// (offset: header 32 + source int64 = 8 → gene count uint32).
	mutated2 := append([]byte(nil), data...)
	mutated2[32+8] = 0xFF
	mutated2[32+9] = 0xFF
	mutated2[32+10] = 0xFF
	if _, err := Load(bytes.NewReader(mutated2), ds.DB); err == nil {
		t.Error("implausible gene count should fail")
	}
}
