package index

import (
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/bitvec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/synth"
)

func smallDataset(t *testing.T, n int, seed uint64) *synth.Dataset {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: n, NMin: 5, NMax: 12, LMin: 8, LMax: 14,
		Dist: synth.Uniform, GenePool: 40, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPackUnpackRef(t *testing.T) {
	cases := []struct{ source, col int }{
		{0, 0}, {1, 2}, {1 << 20, 99}, {-1, 5}, {-3, 0},
	}
	for _, c := range cases {
		s, col := UnpackRef(PackRef(c.source, c.col))
		if s != c.source || col != c.col {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.source, c.col, s, col)
		}
	}
}

func TestBuildBasics(t *testing.T) {
	ds := smallDataset(t, 20, 1)
	idx, err := Build(ds.DB, Options{D: 2, Samples: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantVectors := 0
	for _, m := range ds.DB.Matrices() {
		wantVectors += m.NumGenes()
	}
	if idx.Tree().Size() != wantVectors {
		t.Errorf("tree size = %d, want %d", idx.Tree().Size(), wantVectors)
	}
	if idx.Stats().Vectors != wantVectors {
		t.Errorf("stats vectors = %d", idx.Stats().Vectors)
	}
	if idx.D() != 2 || idx.Tree().Dim() != 5 {
		t.Errorf("dimensions: D=%d treeDim=%d", idx.D(), idx.Tree().Dim())
	}
	for _, m := range ds.DB.Matrices() {
		emb := idx.Embedding(m.Source)
		if emb == nil {
			t.Fatalf("no embedding for source %d", m.Source)
		}
		if len(emb.X) != m.NumGenes() {
			t.Errorf("embedding rows = %d, want %d", len(emb.X), m.NumGenes())
		}
	}
	if msg := idx.Tree().CheckInvariants(); msg != "" {
		t.Errorf("tree invariants: %s", msg)
	}
	// Construction I/O must not leak into query accounting.
	if got := idx.Accountant().Stats().Accesses; got != 0 {
		t.Errorf("accesses after build = %d, want 0", got)
	}
}

func TestInvertedFileMembership(t *testing.T) {
	ds := smallDataset(t, 15, 2)
	idx, err := Build(ds.DB, Options{D: 1, Samples: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inv := idx.Inverted()
	for _, m := range ds.DB.Matrices() {
		for _, g := range m.Genes() {
			sig := inv.Sources(g)
			if !sig.Test(bitvec.HashSource(m.Source, idx.Bits())) {
				t.Fatalf("IF missing source %d for gene %d", m.Source, g)
			}
		}
	}
}

// TestSignaturesNoFalseNegatives: every node's V_f/V_d must include the
// hash bit of every gene/source beneath it, at every level.
func TestSignaturesNoFalseNegatives(t *testing.T) {
	ds := smallDataset(t, 25, 3)
	idx, err := Build(ds.DB, Options{D: 2, Samples: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := idx.Bits()
	var check func(n *rstar.Node)
	check = func(n *rstar.Node) {
		f, d := idx.NodeSignature(n)
		var genes []gene.ID
		var sources []int
		var collect func(m *rstar.Node)
		collect = func(m *rstar.Node) {
			if m.IsLeaf() {
				for i := 0; i < m.NumEntries(); i++ {
					it := m.Item(i)
					src, _ := UnpackRef(it.Ref)
					genes = append(genes, gene.ID(int32(it.Point[len(it.Point)-1])))
					sources = append(sources, src)
				}
				return
			}
			for i := 0; i < m.NumEntries(); i++ {
				collect(m.Child(i))
			}
		}
		collect(n)
		for _, g := range genes {
			if !f.Test(bitvec.HashGene(g, b)) {
				t.Fatalf("node missing gene bit for %d", g)
			}
		}
		for _, s := range sources {
			if !d.Test(bitvec.HashSource(s, b)) {
				t.Fatalf("node missing source bit for %d", s)
			}
		}
		if !n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				check(n.Child(i))
			}
		}
	}
	check(idx.Tree().Root())
}

// TestIndexPrunableSoundness: whenever Lemma 6 prunes a node pair, the
// point-level pivot bound of every same-source pair inside is ≤ γ.
func TestIndexPrunableSoundness(t *testing.T) {
	rng := randgen.New(110)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		d := 1 + r.Intn(3)
		dim := 2*d + 1
		// Random plausible embedded points: x in [0,2], y in [1, 1.415].
		mk := func() []float64 {
			p := make([]float64, dim)
			for w := 0; w < d; w++ {
				p[2*w] = r.UniformIn(0, 2)
				p[2*w+1] = r.UniformIn(1, 1.415)
			}
			return p
		}
		var as, bs [][]float64
		ra := rstar.EmptyRect(dim)
		rb := rstar.EmptyRect(dim)
		for i := 0; i < 4; i++ {
			pa, pb := mk(), mk()
			as = append(as, pa)
			bs = append(bs, pb)
			ra.ExpandPoint(pa)
			rb.ExpandPoint(pb)
		}
		for _, gamma := range []float64{0.2, 0.5, 0.8, 0.95} {
			for _, oneSided := range []bool{false, true} {
				if !IndexPrunable(ra, rb, d, gamma, oneSided) {
					continue
				}
				for _, pa := range as {
					for _, pb := range bs {
						if PointUpperBound(pa, pb, d, oneSided) > gamma {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChargeColumnRead(t *testing.T) {
	ds := smallDataset(t, 5, 4)
	idx, err := Build(ds.DB, Options{D: 1, Samples: 8, Seed: 4, PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	idx.Accountant().ResetStats()
	idx.ChargeColumnRead(m.Source, 0)
	// One column = samples×8 bytes over 64-byte pages.
	wantPages := (m.Samples()*8 + 63) / 64
	if got := int(idx.Accountant().Stats().Accesses); got < 1 || got > wantPages+1 {
		t.Errorf("column read charged %d pages, want ≈ %d", got, wantPages)
	}
	// Unknown source is a no-op.
	idx.Accountant().ResetStats()
	idx.ChargeColumnRead(9999, 0)
	if got := idx.Accountant().Stats().Accesses; got != 0 {
		t.Errorf("unknown source charged %d pages", got)
	}
}

func TestRandomPivotsOption(t *testing.T) {
	ds := smallDataset(t, 10, 5)
	idx, err := Build(ds.DB, Options{D: 2, Samples: 8, Seed: 5, RandomPivots: true})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tree().Size() == 0 {
		t.Error("random-pivot index is empty")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.D != 2 || o.Bits != bitvec.DefaultBits || o.MaxFill == 0 || o.Samples == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

// TestFetchStdColumnRoundTrip: refinement reads standardized vectors from
// the simulated heap; the bytes must round-trip bit-exactly and be charged
// as page I/O.
func TestFetchStdColumnRoundTrip(t *testing.T) {
	ds := smallDataset(t, 6, 6)
	idx, err := Build(ds.DB, Options{D: 1, Samples: 8, Seed: 6, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	idx.Accountant().ResetStats()
	var buf []float64
	for _, m := range ds.DB.Matrices() {
		for j := 0; j < m.NumGenes(); j++ {
			buf, err = idx.FetchStdColumn(m.Source, j, buf)
			if err != nil {
				t.Fatal(err)
			}
			want := m.StdCol(j)
			if len(buf) != len(want) {
				t.Fatalf("fetched %d values, want %d", len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("source %d col %d row %d: %v != %v",
						m.Source, j, i, buf[i], want[i])
				}
			}
		}
	}
	if idx.Accountant().Stats().Accesses == 0 {
		t.Error("heap reads were not charged")
	}
	if _, err := idx.FetchStdColumn(9999, 0, nil); err == nil {
		t.Error("unknown source should error")
	}
}
