package index

import (
	"testing"

	"github.com/imgrn/imgrn/internal/bitvec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/synth"
)

// TestAddMatrixMatchesFreshBuild: growing an index incrementally must give
// the same embeddings and tree contents as building from scratch over the
// enlarged database.
func TestAddMatrixMatchesFreshBuild(t *testing.T) {
	full := smallDataset(t, 12, 60)
	opts := Options{D: 2, Samples: 24, Seed: 60}

	// Fresh build over all 12 matrices.
	fresh, err := Build(full.DB, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Incremental: build over the first 9, then add the remaining 3.
	partial := gene.NewDatabase()
	for i := 0; i < 9; i++ {
		if err := partial.Add(full.DB.Matrix(i)); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := Build(partial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 9; i < 12; i++ {
		if err := grown.AddMatrix(full.DB.Matrix(i)); err != nil {
			t.Fatal(err)
		}
	}

	if grown.Tree().Size() != fresh.Tree().Size() {
		t.Fatalf("tree sizes: grown %d vs fresh %d", grown.Tree().Size(), fresh.Tree().Size())
	}
	if msg := grown.Tree().CheckInvariants(); msg != "" {
		t.Fatalf("grown tree invariants: %s", msg)
	}
	for _, m := range full.DB.Matrices() {
		fe := fresh.Embedding(m.Source)
		ge := grown.Embedding(m.Source)
		if ge == nil {
			t.Fatalf("grown index lacks embedding for %d", m.Source)
		}
		for j := range fe.X {
			for r := range fe.X[j] {
				if fe.X[j][r] != ge.X[j][r] || fe.Y[j][r] != ge.Y[j][r] {
					t.Fatalf("embedding differs for source %d (incremental vs fresh)", m.Source)
				}
			}
		}
	}
	// Inverted file must cover the new sources.
	for i := 9; i < 12; i++ {
		m := full.DB.Matrix(i)
		for _, g := range m.Genes() {
			if !grown.Inverted().Sources(g).Test(bitvec.HashSource(m.Source, grown.Bits())) {
				t.Fatalf("IF missing new source %d", m.Source)
			}
		}
	}
	// Every node must carry pages and signatures after the inserts.
	grown.Tree().Walk(func(n *rstar.Node) bool {
		if n.Pages() == 0 {
			t.Error("node without pages after AddMatrix")
		}
		if n.Aug == nil {
			t.Error("node without signatures after AddMatrix")
		}
		return true
	})
}

func TestAddMatrixValidation(t *testing.T) {
	ds := smallDataset(t, 3, 61)
	idx, err := Build(ds.DB, Options{D: 1, Samples: 8, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.AddMatrix(nil); err == nil {
		t.Error("nil matrix should be rejected")
	}
	if err := idx.AddMatrix(ds.DB.Matrix(0)); err == nil {
		t.Error("duplicate source should be rejected")
	}
}

func TestAddMatrixQueryable(t *testing.T) {
	ds := smallDataset(t, 6, 62)
	idx, err := Build(ds.DB, Options{D: 2, Samples: 16, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := synth.GenerateDatabase(synth.DBParams{
		N: 1, NMin: 8, NMax: 8, LMin: 10, LMax: 10,
		Dist: synth.Uniform, GenePool: 40, Seed: 777,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := extra.DB.Matrix(0)
	// Re-source to avoid collision.
	remapped, err := m.SubMatrix(1000, seq(m.NumGenes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.AddMatrix(remapped); err != nil {
		t.Fatal(err)
	}
	if idx.Embedding(1000) == nil {
		t.Error("embedding for added source missing")
	}
	if idx.DB().BySource(1000) == nil {
		t.Error("database does not contain added source")
	}
	idx.Tree().Walk(func(n *rstar.Node) bool {
		if n.Pages() == 0 {
			t.Error("node without pages after AddMatrix")
		}
		return true
	})
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRemoveMatrix removes a source and verifies queries no longer see it
// while the rest of the index stays intact.
func TestRemoveMatrix(t *testing.T) {
	ds := smallDataset(t, 10, 63)
	idx, err := Build(ds.DB, Options{D: 2, Samples: 16, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	victim := ds.DB.Matrix(4).Source
	removedGenes := ds.DB.BySource(victim).NumGenes()
	before := idx.Tree().Size()
	if err := idx.RemoveMatrix(victim); err != nil {
		t.Fatal(err)
	}
	if idx.Tree().Size() != before-removedGenes {
		t.Errorf("tree size %d, want %d", idx.Tree().Size(), before-removedGenes)
	}
	if idx.DB().BySource(victim) != nil {
		t.Error("database still holds removed source")
	}
	if idx.Embedding(victim) != nil {
		t.Error("embedding still present")
	}
	if msg := idx.Tree().CheckInvariants(); msg != "" {
		t.Errorf("tree invariants after removal: %s", msg)
	}
	// No leaf item may reference the removed source.
	idx.Tree().Walk(func(n *rstar.Node) bool {
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				src, _ := UnpackRef(n.Item(i).Ref)
				if src == victim {
					t.Error("tree still references removed source")
				}
			}
		}
		if n.Aug == nil {
			t.Error("node without signature after removal")
		}
		return true
	})
	if err := idx.RemoveMatrix(victim); err == nil {
		t.Error("double removal should error")
	}
}

func TestDatabaseRemove(t *testing.T) {
	ds := smallDataset(t, 3, 64)
	if !ds.DB.Remove(ds.DB.Matrix(1).Source) {
		t.Fatal("remove reported not-present")
	}
	if ds.DB.Len() != 2 {
		t.Errorf("len = %d", ds.DB.Len())
	}
	if ds.DB.Remove(99999) {
		t.Error("removed a phantom source")
	}
}
