package index

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/pivot"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
)

// embedCalls counts Monte Carlo matrix embeddings performed by this
// process. The Monte Carlo embedding is the expensive part of index
// construction — it is exactly what snapshots exist to avoid repeating —
// so the counter is the boot-time witness that a warm restart loaded its
// vectors instead of recomputing them (persist-smoke asserts on it).
var embedCalls atomic.Uint64

// EmbedCalls reports the process-lifetime count of per-matrix Monte
// Carlo embeddings (offline builds, online AddMatrix, and WAL replay all
// count; snapshot loads do not).
func EmbedCalls() uint64 { return embedCalls.Load() }

// embedResult is the per-matrix product of the offline embedding phase.
type embedResult struct {
	emb  *pivot.Embedding
	cost float64
}

// embedAll runs pivot selection and Monte Carlo embedding for every matrix,
// fanning the work across opts.Workers goroutines. Each matrix's randomness
// derives from (opts.Seed, m.Source) alone, so the result is bit-identical
// for any worker count.
func embedAll(db *gene.Database, opts Options) ([]embedResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > db.Len() && db.Len() > 0 {
		workers = db.Len()
	}
	results := make([]embedResult, db.Len())
	errs := make([]error, db.Len())
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= db.Len() {
					return
				}
				m := db.Matrix(i)
				if m.NumGenes() == 0 {
					continue
				}
				emb, cost, err := embedOne(m, opts)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = embedResult{emb: emb, cost: cost}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// embedOne selects pivots and embeds one matrix with source-derived
// deterministic randomness.
func embedOne(m *gene.Matrix, opts Options) (*pivot.Embedding, float64, error) {
	embedCalls.Add(1)
	srcMix := uint64(int64(m.Source))*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	rng := randgen.New(opts.Seed ^ srcMix ^ 0x5ee0d1a2c3b4f687)
	est := stats.NewEstimator(opts.Seed ^ srcMix ^ 0x1d872f3a9cbe5041)

	var pivots []int
	if opts.RandomPivots {
		d := opts.D
		if m.NumGenes() < d {
			pivots = make([]int, d)
			for i := range pivots {
				pivots[i] = i % m.NumGenes()
			}
		} else {
			pivots = rng.SampleWithoutReplacement(m.NumGenes(), d)
		}
	} else {
		pivots = pivot.SelectPivots(m, opts.D, opts.Selection, rng)
	}
	cost := pivot.Cost(m, pivots)
	emb, err := pivot.Embed(m, pivots, est, opts.Samples)
	if err != nil {
		return nil, 0, fmt.Errorf("index: embedding source %d: %w", m.Source, err)
	}
	return emb, cost, nil
}
