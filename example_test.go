package imgrn_test

import (
	"fmt"
	"log"

	imgrn "github.com/imgrn/imgrn"
)

// moduleDatabase builds a deterministic toy database in which every data
// source carries a co-expression module over genes 0–2.
func moduleDatabase(sources int) *imgrn.Database {
	db := imgrn.NewDatabase()
	// A fixed driver profile; deterministic so example output is stable.
	driver := []float64{0.9, -1.2, 0.4, 1.6, -0.3, -1.8, 0.7, 1.1, -0.6, 0.2,
		-1.4, 0.8, 1.9, -0.9, 0.5, -0.1, 1.3, -1.7, 0.6, -0.5}
	for src := 0; src < sources; src++ {
		shift := float64(src) * 0.01
		col := func(coef float64, jitter float64) []float64 {
			out := make([]float64, len(driver))
			for i, v := range driver {
				// Deterministic per-source jitter keeps sources distinct.
				out[i] = coef*v + jitter*float64((i*7+src*13)%11-5)/10 + shift
			}
			return out
		}
		m, err := imgrn.NewMatrix(src,
			[]imgrn.GeneID{0, 1, 2, imgrn.GeneID(10 + src)},
			[][]float64{col(1, 0.05), col(0.9, 0.1), col(-0.8, 0.1), col(0, 1)})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// ExampleOpen demonstrates the end-to-end flow: index a database offline,
// then answer an ad-hoc inference-and-matching query.
func ExampleOpen() {
	db := moduleDatabase(10)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	query, err := db.BySource(4).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	answers, _, err := eng.Query(query, imgrn.QueryParams{
		Gamma: 0.6, Alpha: 0.5, Seed: 2, Analytic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d of 10 sources\n", len(answers))
	// Output: matched 10 of 10 sources
}

// ExampleEngine_QueryGraph matches a hand-drawn probabilistic pattern
// (e.g. a curated biomarker) against the database.
func ExampleEngine_QueryGraph() {
	db := moduleDatabase(6)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	pattern := imgrn.NewGraph([]imgrn.GeneID{0, 1})
	pattern.SetEdge(0, 1, 0.9)
	answers, _, err := eng.QueryGraph(pattern, imgrn.QueryParams{
		Gamma: 0.6, Alpha: 0.5, Analytic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern found in %d sources\n", len(answers))
	// Output: pattern found in 6 sources
}

// ExampleInferGraph reconstructs a probabilistic GRN from one matrix with
// the paper's randomized measure.
func ExampleInferGraph() {
	db := moduleDatabase(1)
	g, err := imgrn.InferGraph(db.BySource(0), imgrn.NewAnalyticScorer(), 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genes 0 and 1 interact: %v\n", g.HasEdge(0, 1))
	fmt.Printf("genes 0 and 2 interact: %v\n", g.HasEdge(0, 2))
	// Output:
	// genes 0 and 1 interact: true
	// genes 0 and 2 interact: true
}

// ExampleMatchSubgraph runs probabilistic subgraph isomorphism over a
// materialized GRN with a wildcard vertex.
func ExampleMatchSubgraph() {
	g := imgrn.NewGraph([]imgrn.GeneID{1, 2, 3})
	g.SetEdge(0, 1, 0.9)
	g.SetEdge(0, 2, 0.8)
	pattern := imgrn.NewGraph([]imgrn.GeneID{1, imgrn.WildcardGene})
	pattern.SetEdge(0, 1, 0.5)
	matches := imgrn.MatchSubgraph(pattern, g, 0.5)
	fmt.Printf("%d embeddings\n", len(matches))
	// Output: 2 embeddings
}

// ExampleEngine_QueryTopK retrieves only the best-ranked matches.
func ExampleEngine_QueryTopK() {
	db := moduleDatabase(8)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 1, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	query, err := db.BySource(0).SubMatrix(-1, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	top, _, err := eng.QueryTopK(query, imgrn.QueryParams{
		Gamma: 0.6, Alpha: 0.5, Analytic: true,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d of the ranked matches\n", len(top))
	for i := 1; i < len(top); i++ {
		if top[i].Prob > top[i-1].Prob {
			fmt.Println("not ranked!")
		}
	}
	// Output: top 3 of the ranked matches
}
