// Command imgrn-datagen generates gene feature databases in the binary
// IMGRNDB1 format: synthetic Uni/Gau databases following the linear model
// of Section 6.1, or the organism-like "Real" composite carved from
// E.coli / S.aureus / S.cerevisiae stand-ins.
//
// Usage:
//
//	imgrn-datagen -out db.imgrn -n 1000 -dist uni
//	imgrn-datagen -out real.imgrn -n 900 -real
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/synth"
)

func main() {
	var (
		out  = flag.String("out", "db.imgrn", "output database file")
		n    = flag.Int("n", 1000, "number of matrices N")
		nMin = flag.Int("nmin", 20, "minimum genes per matrix")
		nMax = flag.Int("nmax", 40, "maximum genes per matrix")
		lMin = flag.Int("lmin", 10, "minimum samples per matrix")
		lMax = flag.Int("lmax", 20, "maximum samples per matrix")
		pool = flag.Int("pool", 0, "gene universe size (0 = 2·nmax)")
		dist = flag.String("dist", "uni", "edge-weight distribution: uni or gau")
		real = flag.Bool("real", false, "generate the organism-like Real composite instead")
		seed = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	var (
		ds  *synth.Dataset
		err error
	)
	if *real {
		ds, err = synth.RealDataset(*n, *nMin, *nMax, *lMin, *lMax, 4**nMax, 0, *seed)
	} else {
		var d synth.Distribution
		switch *dist {
		case "uni":
			d = synth.Uniform
		case "gau":
			d = synth.Gaussian
		default:
			fatal(fmt.Errorf("unknown distribution %q (want uni or gau)", *dist))
		}
		ds, err = synth.GenerateDatabase(synth.DBParams{
			N: *n, NMin: *nMin, NMax: *nMax, LMin: *lMin, LMax: *lMax,
			Dist: d, GenePool: *pool, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}
	if err := gene.SaveDatabase(*out, ds.DB); err != nil {
		fatal(err)
	}
	s := ds.DB.Summary()
	fmt.Printf("wrote %s: %d matrices, %d vectors, genes/matrix %d..%d, samples %d..%d, %d distinct genes\n",
		*out, s.Matrices, s.TotalVectors, s.MinGenes, s.MaxGenes, s.MinSamples, s.MaxSamples, s.DistinctGenes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imgrn-datagen:", err)
	os.Exit(1)
}
