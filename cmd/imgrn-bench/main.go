// Command imgrn-bench regenerates the paper's evaluation: one experiment
// per table/figure of Section 6 (plus Appendices G and H), printing the
// same rows/series the paper reports.
//
// Usage:
//
//	imgrn-bench -exp fig7            # one experiment, fast scale
//	imgrn-bench -exp all -mode full  # the whole evaluation at Table-2 scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/imgrn/imgrn/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (fig5a…fig15, or 'all')")
		mode     = flag.String("mode", "fast", "reproduction scale: micro, fast or full")
		seed     = flag.Uint64("seed", 42, "random seed")
		queries  = flag.Int("queries", 0, "override query count per measurement")
		n        = flag.Int("n", 0, "override database size N")
		samples  = flag.Int("samples", 0, "override Monte Carlo samples")
		analytic = flag.Bool("analytic", false, "use the analytic permutation-null estimator")
		nsweep   = flag.String("nsweep", "", "override the fig12/fig13 database-size sweep (comma-separated Ns)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	p, err := experiments.ByMode(*mode)
	if err != nil {
		fatal(err)
	}
	p.Seed = *seed
	p.Analytic = *analytic
	if *queries > 0 {
		p.Queries = *queries
	}
	if *n > 0 {
		p.N = *n
	}
	if *samples > 0 {
		p.Samples = *samples
	}
	if *nsweep != "" {
		for _, part := range strings.Split(*nsweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("bad -nsweep entry %q", part))
			}
			p.NSweepOverride = append(p.NSweepOverride, v)
		}
	}

	if *exp == "all" {
		if err := experiments.RunAll(p, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("### %s (%s)\n", *exp, p)
	if err := experiments.Run(*exp, p, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imgrn-bench:", err)
	os.Exit(1)
}
