// Package cmd_test drives the command-line tools end to end: it builds the
// binaries with the local toolchain, generates a database with
// imgrn-datagen, answers queries with imgrn (including index persistence),
// and runs one harness experiment with imgrn-bench.
package cmd_test

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the CLI binaries once into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"imgrn", "imgrn-datagen", "imgrn-bench", "imgrn-server"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./"+tool)
		cmd.Dir = mustSelfDir(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

// mustSelfDir returns the cmd/ directory this test file lives in.
func mustSelfDir(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	dbPath := filepath.Join(work, "db.imgrn")
	queryPath := filepath.Join(work, "q.imgrn")
	idxPath := filepath.Join(work, "idx.imgrn")

	// 1. Generate a small database and an even smaller query set drawn
	//    from the same seed (guaranteeing shared genes).
	out := run(t, filepath.Join(bins, "imgrn-datagen"),
		"-out", dbPath, "-n", "60", "-nmin", "8", "-nmax", "14",
		"-lmin", "10", "-lmax", "14", "-pool", "40", "-seed", "5")
	if !strings.Contains(out, "60 matrices") {
		t.Fatalf("datagen output: %s", out)
	}
	run(t, filepath.Join(bins, "imgrn-datagen"),
		"-out", queryPath, "-n", "2", "-nmin", "4", "-nmax", "5",
		"-lmin", "10", "-lmax", "12", "-pool", "40", "-seed", "5")

	// 2. Index stats only.
	out = run(t, filepath.Join(bins, "imgrn"), "-db", dbPath, "-stats")
	if !strings.Contains(out, "index:") {
		t.Fatalf("imgrn -stats output: %s", out)
	}

	// 3. Query, persisting the index.
	out = run(t, filepath.Join(bins, "imgrn"),
		"-db", dbPath, "-query-db", queryPath, "-index", idxPath,
		"-gamma", "0.5", "-alpha", "0.3", "-analytic")
	if !strings.Contains(out, "query") {
		t.Fatalf("imgrn query output: %s", out)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index not persisted: %v", err)
	}

	// 4. Re-query from the saved index; answers must match.
	out2 := run(t, filepath.Join(bins, "imgrn"),
		"-db", dbPath, "-query-db", queryPath, "-index", idxPath,
		"-gamma", "0.5", "-alpha", "0.3", "-analytic")
	if answersOf(out) != answersOf(out2) {
		t.Errorf("answers differ between fresh and loaded index:\n%s\nvs\n%s", out, out2)
	}

	// 5. One harness experiment at a reduced size.
	out = run(t, filepath.Join(bins, "imgrn-bench"),
		"-exp", "fig8", "-n", "120", "-queries", "2", "-analytic")
	if !strings.Contains(out, "fig8a") || !strings.Contains(out, "I/O cost") {
		t.Fatalf("bench output incomplete: %s", out)
	}

	// 6. The bench registry listing.
	out = run(t, filepath.Join(bins, "imgrn-bench"), "-list")
	if !strings.Contains(out, "fig12") {
		t.Fatalf("bench -list output: %s", out)
	}
}

// answersOf strips the timing-dependent parts of imgrn output, keeping
// only the "source … Pr{G}=…" result lines.
func answersOf(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Pr{G}=") {
			keep = append(keep, strings.TrimSpace(line))
		}
	}
	return strings.Join(keep, "\n")
}

// TestServerEndToEnd boots the HTTP server binary against a generated
// database and exercises the JSON API over a real socket.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	dbPath := filepath.Join(work, "db.imgrn")
	run(t, filepath.Join(bins, "imgrn-datagen"),
		"-out", dbPath, "-n", "30", "-nmin", "6", "-nmax", "10",
		"-lmin", "10", "-lmax", "12", "-pool", "30", "-seed", "9")

	addr := "127.0.0.1:39181"
	cmd := exec.Command(filepath.Join(bins, "imgrn-server"),
		"-db", dbPath, "-addr", addr, "-seed", "9")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the listener.
	base := "http://" + addr
	var resp *http.Response
	var err error
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never became healthy: %v", err)
	}
	resp.Body.Close()

	// Stats.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"matrices":30`) {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}

	// A graph query over numeric gene IDs.
	payload := `{"genes":["0","1"],"edges":[{"s":0,"t":1,"prob":0.9}],` +
		`"params":{"gamma":0.5,"alpha":0.3,"analytic":true}}`
	resp, err = http.Post(base+"/query-graph", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"answers"`) {
		t.Fatalf("query-graph: %d %s", resp.StatusCode, body)
	}
}
