// Command imgrn-benchjson converts `go test -bench` output read from stdin
// into a machine-readable JSON summary for the inference-kernel benchmarks
// (`make bench-json` → BENCH_inference.json).
//
// The summary carries a meta block describing the collection host
// (go version, GOOS/GOARCH, num_cpu, gomaxprocs — without which the
// parallel speedup ratios cannot be interpreted), every parsed benchmark
// line (name, iterations, ns/op, allocs/op, extra metrics such as
// "speedup" and "ns/pair"), plus derived speedup ratios for the
// scalar-vs-batch pairs the kernel work targets:
// BenchmarkInferPruned/{scalar,batch} by ns/op, and
// BenchmarkEdgeProbability{Scalar,Batch} by their ns/pair metric.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/imgrn/imgrn/internal/benchjson"
)

func main() {
	sum, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imgrn-benchjson:", err)
		os.Exit(1)
	}
	sum.Meta = benchjson.CollectMeta()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "imgrn-benchjson:", err)
		os.Exit(1)
	}
}
