// Cluster roles (DESIGN.md §15). The same binary serves all three
// deployment shapes:
//
//	imgrn-server                          # standalone (the default role)
//	imgrn-server -role shard ...          # shard server: hosts a slice of the
//	                                      # global partition and the /cluster/*
//	                                      # execution endpoints
//	imgrn-server -role coordinator ...    # scatter-gather front: owns no data,
//	                                      # fans /query and friends out to the
//	                                      # -shards-at roster
//
// Every process is configured with the same -shards-at roster and
// -replication factor; shard-to-server assignment is implicit (shard g
// lives on servers (g+r) mod S), and source-to-shard placement runs on a
// consistent-hash ring every member derives from the roster size alone —
// so a cluster is defined entirely by flags, no placement service.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/server"
	"github.com/imgrn/imgrn/internal/shard"
)

// clusterFlags carries the cluster-role configuration from main.
type clusterFlags struct {
	role        string
	shardsAt    string
	serverIndex int
	replication int
	hedgeAfter  time.Duration
	floorEvery  time.Duration
	rpcTimeout  time.Duration
	rpcRetries  int
}

// topology resolves the -shards-at roster into the shared cluster shape.
func (cf *clusterFlags) topology() (cluster.Topology, error) {
	var urls []string
	for _, u := range strings.Split(cf.shardsAt, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return cluster.Topology{}, fmt.Errorf("-role %s requires -shards-at (comma-separated shard-server URLs)", cf.role)
	}
	r := cf.replication
	if r <= 0 {
		r = 2
	}
	if r > len(urls) {
		r = len(urls)
	}
	topo := cluster.Topology{Servers: urls, NumShards: len(urls), Replication: r}
	return topo, topo.Validate()
}

// serveShard boots the shard role: filter the database to the global
// shards this server hosts (per the shared ring), build the local store
// over exactly those shards, and serve the full HTTP surface plus the
// /cluster/* execution endpoints.
func serveShard(cf clusterFlags, dbPath, dataDir string, d int, seed uint64,
	ckptBytes int64, ckptEvery time.Duration, addr string,
	queryTimeout time.Duration, maxConcurrent, workers int,
	pprofOn bool, slowQuery, drainTimeout time.Duration, planAdaptive bool) {
	topo, err := cf.topology()
	if err != nil {
		fatal(err)
	}
	if cf.serverIndex < 0 || cf.serverIndex >= len(topo.Servers) {
		fatal(fmt.Errorf("-server-index %d out of range [0,%d) for the -shards-at roster", cf.serverIndex, len(topo.Servers)))
	}
	ring := cluster.NewRing(topo.NumShards, 0)
	owned := topo.ServerShards(cf.serverIndex)
	role := &server.ShardRole{NumShards: topo.NumShards, Shards: owned, Ring: ring}
	// The local store partitions into len(owned) LOCAL shards; placement
	// maps a source through the shared ring to its global shard, then to
	// that shard's local index here.
	localOf := func(global int) int {
		for local, g := range owned {
			if g == global {
				return local
			}
		}
		return -1
	}
	placeLocal := func(source int) int {
		if local := localOf(ring.Place(source)); local >= 0 {
			return local
		}
		return 0 // unreachable for filtered boots; mutations are placement-checked at the handler
	}
	opts := shard.Options{
		NumShards: len(owned),
		PlaceFunc: placeLocal,
		Index:     index.Options{D: d, Seed: seed, BufferPages: 1024},
	}

	if dataDir != "" {
		db := loadOwned(dbPath, dataDir, ring, owned, localOf)
		st, err := shard.OpenDurable(db, opts, shard.DurableOptions{
			Dir:             dataDir,
			CheckpointBytes: ckptBytes,
			CheckpointEvery: ckptEvery,
		})
		if err != nil {
			fatal(err)
		}
		ds := st.DurableStats()
		fmt.Printf("cluster: shard server %d/%d serving global shards %v (R=%d, warm=%v gen=%d)\n",
			cf.serverIndex, len(topo.Servers), owned, topo.Replication, ds.WarmBoot, ds.Gen)
		serve(server.NewDurableShardServer(st, nil, role), st, addr, queryTimeout, maxConcurrent,
			workers, pprofOn, slowQuery, drainTimeout, planAdaptive)
		return
	}

	if dbPath == "" {
		fatal(fmt.Errorf("-db is required for the shard role"))
	}
	db, err := gene.LoadDatabase(dbPath)
	if err != nil {
		fatal(err)
	}
	owndb := filterOwned(db, ring, owned)
	coord, err := shard.Build(owndb, opts)
	if err != nil {
		fatal(err)
	}
	bs := coord.IndexStats()
	fmt.Printf("cluster: shard server %d/%d serving global shards %v (R=%d): %d sources, %d vectors\n",
		cf.serverIndex, len(topo.Servers), owned, topo.Replication, owndb.Len(), bs.Vectors)
	serve(server.NewShardServer(coord, nil, role), nil, addr, queryTimeout, maxConcurrent,
		workers, pprofOn, slowQuery, drainTimeout, planAdaptive)
}

// loadOwned loads and filters the seed database for a durable shard
// boot; a warm-bootable data directory skips the load entirely (the
// snapshots already hold exactly the owned sources).
func loadOwned(dbPath, dataDir string, ring *cluster.Ring, owned []int, localOf func(int) int) *gene.Database {
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST")); err == nil {
		return nil // warm boot
	}
	if dbPath == "" {
		fatal(fmt.Errorf("-db is required to initialize a fresh -data-dir"))
	}
	db, err := gene.LoadDatabase(dbPath)
	if err != nil {
		fatal(err)
	}
	return filterOwned(db, ring, owned)
}

// filterOwned keeps the sources the shared ring places on an owned
// global shard.
func filterOwned(db *gene.Database, ring *cluster.Ring, owned []int) *gene.Database {
	out := gene.NewDatabase()
	for _, m := range db.Matrices() {
		g := ring.Place(m.Source)
		for _, og := range owned {
			if og == g {
				if err := out.Add(m); err != nil {
					fatal(err)
				}
				break
			}
		}
	}
	return out
}

// serveCoordinator boots the coordinator role: a dataless scatter-gather
// front over the -shards-at roster.
func serveCoordinator(cf clusterFlags, addr string,
	queryTimeout time.Duration, maxConcurrent, workers int,
	pprofOn bool, slowQuery, drainTimeout time.Duration, planAdaptive bool) {
	topo, err := cf.topology()
	if err != nil {
		fatal(err)
	}
	srv, err := server.NewCluster(cluster.CoordinatorOptions{
		Topology:   topo,
		Client:     &cluster.Client{Timeout: cf.rpcTimeout, Retries: cf.rpcRetries},
		HedgeAfter: cf.hedgeAfter,
		FloorEvery: cf.floorEvery,
	}, nil)
	if err != nil {
		fatal(err)
	}
	srv.Remote().Start()
	defer srv.Remote().Close()
	fmt.Printf("cluster: coordinator over %d shard servers (P=%d, R=%d)\n",
		len(topo.Servers), topo.NumShards, topo.Replication)
	serve(srv, nil, addr, queryTimeout, maxConcurrent,
		workers, pprofOn, slowQuery, drainTimeout, planAdaptive)
}
