// Command imgrn-server serves IM-GRN queries over HTTP: it loads a gene
// feature database, builds (or loads) the index, and exposes the JSON API
// of internal/server — the prototype-system interface described in the
// paper's conclusion.
//
// Usage:
//
//	imgrn-server -db db.imgrn -addr :8080
//	imgrn-server -db db.imgrn -index idx.imgrn   # reuse a saved index
//
// Queries are served concurrently; -max-concurrent sheds excess load with
// 503, -query-timeout bounds each query, and -workers sets the default
// intra-query parallelism. SIGINT/SIGTERM drain in-flight requests before
// exit (bounded by -shutdown-timeout).
//
// Observability: /metrics serves the Prometheus metric catalog and
// /healthz the liveness probe; -pprof exposes net/http/pprof under
// /debug/pprof/, and -slow-query logs any query slower than the given
// threshold with its per-stage trace breakdown. See the README
// "Observability quick-start" and the DESIGN.md metric catalog.
//
// Example query:
//
//	curl -s localhost:8080/query-graph -d '{
//	  "genes": ["12", "47"],
//	  "edges": [{"s": 0, "t": 1, "prob": 0.9}],
//	  "params": {"gamma": 0.5, "alpha": 0.5}
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/server"
	"github.com/imgrn/imgrn/internal/shard"
)

func main() {
	var (
		dbPath        = flag.String("db", "", "database file (required)")
		idxPath       = flag.String("index", "", "saved index file (optional; built fresh when absent, and written here afterwards when set)")
		addr          = flag.String("addr", ":8080", "listen address")
		d             = flag.Int("d", 2, "pivots per matrix when building")
		seed          = flag.Uint64("seed", 42, "random seed when building")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-query wall-clock bound (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max in-flight query requests before shedding with 503 (0 = unbounded)")
		workers       = flag.Int("workers", 0, "default intra-query parallelism (0 = sequential)")
		drainTimeout  = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		pprofOn       = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		slowQuery     = flag.Duration("slow-query", 0, "log queries slower than this with their stage breakdown (0 disables)")
		shards        = flag.Int("shards", 1, "partition the database across this many index shards and query them scatter-gather (1 = unsharded; incompatible with -index)")
	)
	flag.Parse()
	if *dbPath == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	db, err := gene.LoadDatabase(*dbPath)
	if err != nil {
		fatal(err)
	}
	sum := db.Summary()
	fmt.Printf("database: %d matrices, %d vectors, %d distinct genes\n",
		sum.Matrices, sum.TotalVectors, sum.DistinctGenes)

	if *shards > 1 {
		// Sharded serving: partition round-robin, build one index per
		// shard, and run queries scatter-gather. Saved indexes are
		// single-shard only, so -index is rejected here.
		if *idxPath != "" {
			fatal(fmt.Errorf("-shards and -index are mutually exclusive; sharded indexes rebuild at startup"))
		}
		coord, err := shard.Build(db, shard.Options{
			NumShards: *shards,
			Index:     index.Options{D: *d, Seed: *seed, BufferPages: 1024},
		})
		if err != nil {
			fatal(err)
		}
		bs := coord.IndexStats()
		fmt.Printf("index: built %d shards, %d vectors, %d nodes in %v\n",
			coord.NumShards(), bs.Vectors, bs.TreeNodes, bs.Elapsed)
		serve(server.NewSharded(coord, nil), *addr, *queryTimeout, *maxConcurrent,
			*workers, *pprofOn, *slowQuery, *drainTimeout)
		return
	}

	var idx *index.Index
	if *idxPath != "" {
		if idx, err = index.LoadFile(*idxPath, db); err == nil {
			fmt.Printf("index: loaded from %s (%d vectors) in %v\n",
				*idxPath, idx.Stats().Vectors, idx.Stats().Elapsed)
		} else {
			fmt.Printf("index: cannot load %s (%v); building fresh\n", *idxPath, err)
		}
	}
	if idx == nil {
		idx, err = index.Build(db, index.Options{D: *d, Seed: *seed, BufferPages: 1024})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index: built %d vectors, %d nodes in %v\n",
			idx.Stats().Vectors, idx.Stats().TreeNodes, idx.Stats().Elapsed)
		if *idxPath != "" {
			if err := idx.SaveFile(*idxPath); err != nil {
				fatal(err)
			}
			fmt.Printf("index: saved to %s\n", *idxPath)
		}
	}

	serve(server.New(idx, nil), *addr, *queryTimeout, *maxConcurrent,
		*workers, *pprofOn, *slowQuery, *drainTimeout)
}

// serve configures the HTTP server and runs it until SIGINT/SIGTERM,
// then drains in-flight requests.
func serve(h *server.Server, addr string, queryTimeout time.Duration, maxConcurrent,
	workers int, pprofOn bool, slowQuery, drainTimeout time.Duration) {
	h.QueryTimeout = queryTimeout
	h.MaxConcurrent = maxConcurrent
	h.Workers = workers
	h.EnablePprof = pprofOn
	h.SlowQueryThreshold = slowQuery
	if pprofOn {
		fmt.Println("pprof: enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills immediately
		fmt.Println("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "imgrn-server: forced shutdown:", err)
			_ = srv.Close()
			os.Exit(1)
		}
		fmt.Println("shutdown complete")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imgrn-server:", err)
	os.Exit(1)
}
