// Command imgrn-server serves IM-GRN queries over HTTP: it loads a gene
// feature database, builds (or loads) the index, and exposes the JSON API
// of internal/server — the prototype-system interface described in the
// paper's conclusion.
//
// Usage:
//
//	imgrn-server -db db.imgrn -addr :8080
//	imgrn-server -db db.imgrn -index idx.imgrn   # reuse a saved index
//	imgrn-server -db db.imgrn -data-dir ./data   # durable: WAL + snapshots
//
// With -data-dir the server is durable (DESIGN.md §12): every mutation is
// fsynced to a per-shard write-ahead log before its HTTP response, the
// log is folded into crash-safe snapshots on the -checkpoint-bytes /
// -checkpoint-every thresholds and on clean shutdown, and a restart
// warm-boots from the snapshots — skipping the Monte Carlo embedding —
// replaying only the mutations logged since the last checkpoint. On a
// warm boot -db is optional and ignored; kill -9 loses nothing that was
// acknowledged.
//
// Queries are served concurrently; -max-concurrent sheds excess load with
// 503, -query-timeout bounds each query, and -workers sets the default
// intra-query parallelism. SIGINT/SIGTERM drain in-flight requests before
// exit (bounded by -shutdown-timeout).
//
// Observability: /metrics serves the Prometheus metric catalog and
// /healthz the liveness probe; -pprof exposes net/http/pprof under
// /debug/pprof/, and -slow-query logs any query slower than the given
// threshold with its per-stage trace breakdown. See the README
// "Observability quick-start" and the DESIGN.md metric catalog.
//
// Example query:
//
//	curl -s localhost:8080/query-graph -d '{
//	  "genes": ["12", "47"],
//	  "edges": [{"s": 0, "t": 1, "prob": 0.9}],
//	  "params": {"gamma": 0.5, "alpha": 0.5}
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/server"
	"github.com/imgrn/imgrn/internal/shard"
)

func main() {
	var (
		dbPath        = flag.String("db", "", "database file (required)")
		idxPath       = flag.String("index", "", "saved index file (optional; built fresh when absent, and written here afterwards when set)")
		addr          = flag.String("addr", ":8080", "listen address")
		d             = flag.Int("d", 2, "pivots per matrix when building")
		seed          = flag.Uint64("seed", 42, "random seed when building")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-query wall-clock bound (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max in-flight query requests before shedding with 503 (0 = unbounded)")
		workers       = flag.Int("workers", 0, "default intra-query parallelism (0 = sequential)")
		drainTimeout  = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		pprofOn       = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		slowQuery     = flag.Duration("slow-query", 0, "log queries slower than this with their stage breakdown (0 disables)")
		shards        = flag.Int("shards", 1, "partition the database across this many index shards and query them scatter-gather (1 = unsharded; incompatible with -index)")
		dataDir       = flag.String("data-dir", "", "durable data directory: WAL every mutation and checkpoint into snapshots; restarts warm-boot from it (incompatible with -index)")
		ckptBytes     = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint when live WAL segments exceed this many bytes (durable mode; <0 disables the size trigger)")
		ckptEvery     = flag.Duration("checkpoint-every", 0, "background checkpoint interval while mutations are outstanding (durable mode; 0 = size-triggered and shutdown only)")
		planAdaptive  = flag.Bool("plan-adaptive", false, "plan queries adaptively with the cost-model planner (per-query plans appear in the stats \"plan\" block and the imgrn_plan_* metrics; off = the fixed default pipeline)")

		// Cluster roles (DESIGN.md §15; see cluster.go).
		role        = flag.String("role", "", `cluster role: "" standalone, "shard" (host a slice of the global partition), "coordinator" (scatter-gather front over -shards-at)`)
		shardsAt    = flag.String("shards-at", "", "comma-separated shard-server base URLs, roster order (cluster roles)")
		serverIndex = flag.Int("server-index", -1, "this server's index in the -shards-at roster (shard role)")
		replication = flag.Int("replication", 2, "replicas per global shard (clamped to the roster size)")
		hedgeAfter  = flag.Duration("hedge-after", 250*time.Millisecond, "hedge a read to the next replica after this much silence (coordinator; negative disables)")
		floorEvery  = flag.Duration("floor-every", 25*time.Millisecond, "top-k floor push cadence (coordinator; negative disables)")
		rpcTimeout  = flag.Duration("rpc-timeout", 60*time.Second, "per-hop RPC budget (coordinator)")
		rpcRetries  = flag.Int("rpc-retries", 2, "idempotent-read retries after transient RPC failures (coordinator)")
	)
	flag.Parse()

	cf := clusterFlags{
		role: *role, shardsAt: *shardsAt, serverIndex: *serverIndex,
		replication: *replication, hedgeAfter: *hedgeAfter, floorEvery: *floorEvery,
		rpcTimeout: *rpcTimeout, rpcRetries: *rpcRetries,
	}
	switch *role {
	case "":
	case "shard":
		serveShard(cf, *dbPath, *dataDir, *d, *seed, *ckptBytes, *ckptEvery,
			*addr, *queryTimeout, *maxConcurrent, *workers, *pprofOn, *slowQuery, *drainTimeout,
			*planAdaptive)
		return
	case "coordinator":
		serveCoordinator(cf, *addr, *queryTimeout, *maxConcurrent, *workers,
			*pprofOn, *slowQuery, *drainTimeout, *planAdaptive)
		return
	default:
		fatal(fmt.Errorf("unknown -role %q (want shard or coordinator)", *role))
	}

	if *dataDir != "" {
		if *idxPath != "" {
			fatal(fmt.Errorf("-data-dir and -index are mutually exclusive; the data directory holds its own snapshots"))
		}
		serveDurable(*dataDir, *dbPath, *shards, *d, *seed, *ckptBytes, *ckptEvery,
			*addr, *queryTimeout, *maxConcurrent, *workers, *pprofOn, *slowQuery, *drainTimeout,
			*planAdaptive)
		return
	}

	if *dbPath == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	db, err := gene.LoadDatabase(*dbPath)
	if err != nil {
		fatal(err)
	}
	sum := db.Summary()
	fmt.Printf("database: %d matrices, %d vectors, %d distinct genes\n",
		sum.Matrices, sum.TotalVectors, sum.DistinctGenes)

	if *shards > 1 {
		// Sharded serving: partition round-robin, build one index per
		// shard, and run queries scatter-gather. Saved indexes are
		// single-shard only, so -index is rejected here.
		if *idxPath != "" {
			fatal(fmt.Errorf("-shards and -index are mutually exclusive; sharded indexes rebuild at startup"))
		}
		coord, err := shard.Build(db, shard.Options{
			NumShards: *shards,
			Index:     index.Options{D: *d, Seed: *seed, BufferPages: 1024},
		})
		if err != nil {
			fatal(err)
		}
		bs := coord.IndexStats()
		fmt.Printf("index: built %d shards, %d vectors, %d nodes in %v\n",
			coord.NumShards(), bs.Vectors, bs.TreeNodes, bs.Elapsed)
		serve(server.NewSharded(coord, nil), nil, *addr, *queryTimeout, *maxConcurrent,
			*workers, *pprofOn, *slowQuery, *drainTimeout, *planAdaptive)
		return
	}

	var idx *index.Index
	if *idxPath != "" {
		if idx, err = index.LoadFile(*idxPath, db); err == nil {
			fmt.Printf("index: loaded from %s (%d vectors) in %v\n",
				*idxPath, idx.Stats().Vectors, idx.Stats().Elapsed)
		} else {
			fmt.Printf("index: cannot load %s (%v); building fresh\n", *idxPath, err)
		}
	}
	if idx == nil {
		idx, err = index.Build(db, index.Options{D: *d, Seed: *seed, BufferPages: 1024})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index: built %d vectors, %d nodes in %v\n",
			idx.Stats().Vectors, idx.Stats().TreeNodes, idx.Stats().Elapsed)
		if *idxPath != "" {
			if err := idx.SaveFile(*idxPath); err != nil {
				fatal(err)
			}
			fmt.Printf("index: saved to %s\n", *idxPath)
		}
	}

	serve(server.New(idx, nil), nil, *addr, *queryTimeout, *maxConcurrent,
		*workers, *pprofOn, *slowQuery, *drainTimeout, *planAdaptive)
}

// serveDurable opens (or initializes) the durable store in dataDir and
// serves over it. A directory holding committed state warm-boots without
// re-embedding and ignores -db; a fresh directory cold-boots from the
// -db database and checkpoints it before serving.
func serveDurable(dataDir, dbPath string, shards, d int, seed uint64,
	ckptBytes int64, ckptEvery time.Duration, addr string,
	queryTimeout time.Duration, maxConcurrent, workers int,
	pprofOn bool, slowQuery, drainTimeout time.Duration, planAdaptive bool) {
	var db *gene.Database
	warmPossible := false
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST")); err == nil {
		warmPossible = true
	}
	if !warmPossible {
		if dbPath == "" {
			fatal(fmt.Errorf("-db is required to initialize a fresh -data-dir"))
		}
		var err error
		if db, err = gene.LoadDatabase(dbPath); err != nil {
			fatal(err)
		}
		sum := db.Summary()
		fmt.Printf("database: %d matrices, %d vectors, %d distinct genes\n",
			sum.Matrices, sum.TotalVectors, sum.DistinctGenes)
	}

	embedBefore := index.EmbedCalls()
	st, err := shard.OpenDurable(db, shard.Options{
		NumShards: shards,
		Index:     index.Options{D: d, Seed: seed, BufferPages: 1024},
	}, shard.DurableOptions{
		Dir:             dataDir,
		CheckpointBytes: ckptBytes,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		fatal(err)
	}
	embedded := index.EmbedCalls() - embedBefore
	ds := st.DurableStats()
	n := st.Database().Len()
	if ds.WarmBoot {
		// The embedded/n ratio is the warm-boot witness: only mutations
		// replayed from the WAL re-embed; everything else loads its
		// vectors from the snapshots.
		fmt.Printf("store: warm boot gen=%d replayed=%d torn=%dB embedded=%d/%d sources in %v\n",
			ds.Gen, ds.ReplayedRecords, ds.TornBytes, embedded, n, ds.BootDuration)
	} else {
		fmt.Printf("store: cold boot gen=%d embedded=%d/%d sources in %v (checkpointed to %s)\n",
			ds.Gen, embedded, n, ds.BootDuration, dataDir)
	}
	bs := st.IndexStats()
	fmt.Printf("index: %d shards, %d vectors, %d nodes\n",
		st.NumShards(), bs.Vectors, bs.TreeNodes)
	serve(server.NewDurable(st, nil), st, addr, queryTimeout, maxConcurrent,
		workers, pprofOn, slowQuery, drainTimeout, planAdaptive)
}

// serve configures the HTTP server and runs it until SIGINT/SIGTERM,
// then drains in-flight requests. A non-nil store is closed after the
// drain — the clean-shutdown checkpoint, so the next boot replays
// nothing.
func serve(h *server.Server, st *shard.Store, addr string, queryTimeout time.Duration, maxConcurrent,
	workers int, pprofOn bool, slowQuery, drainTimeout time.Duration, planAdaptive bool) {
	h.QueryTimeout = queryTimeout
	h.MaxConcurrent = maxConcurrent
	h.Workers = workers
	h.EnablePprof = pprofOn
	h.SlowQueryThreshold = slowQuery
	if planAdaptive {
		h.Planner = plan.NewPlanner(plan.Options{})
		fmt.Println("planner: adaptive query planning enabled")
	}
	if pprofOn {
		fmt.Println("pprof: enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills immediately
		fmt.Println("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "imgrn-server: forced shutdown:", err)
			_ = srv.Close()
			closeStore(st)
			os.Exit(1)
		}
		closeStore(st)
		fmt.Println("shutdown complete")
	}
}

// closeStore checkpoints and closes a durable store (nil-safe).
func closeStore(st *shard.Store) {
	if st == nil {
		return
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "imgrn-server: closing store:", err)
		return
	}
	fmt.Printf("store: clean shutdown at gen %d\n", st.Gen())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imgrn-server:", err)
	os.Exit(1)
}
