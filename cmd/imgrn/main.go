// Command imgrn loads a gene feature database, builds the IM-GRN index,
// and answers ad-hoc inference-and-matching queries: given the data source
// ID of a query matrix (or a database file containing query matrices), it
// reports every database matrix whose inferred GRN contains the query GRN
// with confidence above α.
//
// Usage:
//
//	imgrn -db db.imgrn -query-db q.imgrn -gamma 0.5 -alpha 0.5
//	imgrn -db db.imgrn -stats            # index statistics only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file (required)")
		idxPath   = flag.String("index", "", "saved index file (loaded when present, else built and written)")
		queryPath = flag.String("query-db", "", "database file holding query matrices")
		gamma     = flag.Float64("gamma", 0.5, "inference threshold γ ∈ [0,1)")
		alpha     = flag.Float64("alpha", 0.5, "probabilistic threshold α ∈ [0,1)")
		d         = flag.Int("d", 2, "pivots per matrix")
		samples   = flag.Int("samples", 0, "Monte Carlo samples per edge probability")
		analytic  = flag.Bool("analytic", false, "use the analytic estimator")
		seed      = flag.Uint64("seed", 42, "random seed")
		statsOnly = flag.Bool("stats", false, "print index statistics and exit")
	)
	flag.Parse()
	if *dbPath == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	db, err := gene.LoadDatabase(*dbPath)
	if err != nil {
		fatal(err)
	}
	sum := db.Summary()
	fmt.Printf("database: %d matrices, %d vectors, %d distinct genes\n",
		sum.Matrices, sum.TotalVectors, sum.DistinctGenes)

	var idx *index.Index
	if *idxPath != "" {
		if loaded, err := index.LoadFile(*idxPath, db); err == nil {
			idx = loaded
		}
	}
	if idx == nil {
		built, err := index.Build(db, index.Options{D: *d, Seed: *seed, BufferPages: 64})
		if err != nil {
			fatal(err)
		}
		idx = built
		if *idxPath != "" {
			if err := idx.SaveFile(*idxPath); err != nil {
				fatal(err)
			}
		}
	}
	bs := idx.Stats()
	fmt.Printf("index: %d vectors, %d nodes, height %d, %d pages, ready in %v\n",
		bs.Vectors, bs.TreeNodes, bs.TreeHeight, bs.Pages, bs.Elapsed)
	if *statsOnly {
		return
	}
	if *queryPath == "" {
		fatal(fmt.Errorf("-query-db is required unless -stats is given"))
	}
	qdb, err := gene.LoadDatabase(*queryPath)
	if err != nil {
		fatal(err)
	}
	proc, err := core.NewProcessor(idx, core.Params{
		Gamma: *gamma, Alpha: *alpha, Samples: *samples,
		Seed: *seed, Analytic: *analytic,
	})
	if err != nil {
		fatal(err)
	}
	for _, mq := range qdb.Matrices() {
		answers, st, err := proc.Query(mq)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nquery %d (%d genes × %d samples): Q has %d edges; %d answers in %v (io=%d pages, cand=%d)\n",
			mq.Source, mq.NumGenes(), mq.Samples(), st.QueryEdges,
			len(answers), st.Total, st.IOCost, st.CandidateGenes)
		for _, a := range answers {
			fmt.Printf("  source %-6d Pr{G}=%.4f over %d edges\n", a.Source, a.Prob, len(a.Edges))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imgrn:", err)
	os.Exit(1)
}
