package imgrn_test

import (
	"fmt"
	"testing"

	imgrn "github.com/imgrn/imgrn"
)

// batchQueries pulls a mixed-width query workload out of the fixture
// database: alternating 2- and 3-gene sub-matrices of the first sources.
func batchQueries(t *testing.T, db *imgrn.Database, n int) []*imgrn.Matrix {
	t.Helper()
	out := make([]*imgrn.Matrix, n)
	for i := range out {
		cols := []int{0, 1}
		if i%2 == 1 {
			cols = []int{0, 1, 2}
		}
		qm, err := db.BySource(i%6).SubMatrix(-1, cols)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = qm
	}
	return out
}

func assertAnswersEqual(t *testing.T, label string, want, got []imgrn.Answer) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d answers sequential vs %d batch", label, len(want), len(got))
	}
	for i := range want {
		if want[i].Source != got[i].Source || want[i].Prob != got[i].Prob {
			t.Fatalf("%s: answer %d differs: sequential (src=%d p=%v), batch (src=%d p=%v)",
				label, i, want[i].Source, want[i].Prob, got[i].Source, got[i].Prob)
		}
		if len(want[i].Edges) != len(got[i].Edges) {
			t.Fatalf("%s: answer %d edge count differs", label, i)
		}
		for j := range want[i].Edges {
			if want[i].Edges[j] != got[i].Edges[j] {
				t.Fatalf("%s: answer %d edge %d differs", label, i, j)
			}
		}
	}
}

// TestEngineBatchMatchesSequential pins the public determinism contract:
// QueryBatch on a fresh engine is byte-identical to a sequential Query
// loop on an identically fresh engine, Monte Carlo kernel included (the
// engines must be distinct so both start with cold probability caches).
func TestEngineBatchMatchesSequential(t *testing.T) {
	opts := imgrn.IndexOptions{D: 2, Samples: 24, Seed: 61}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.3, Samples: 32, Seed: 63}

	seqEng, err := imgrn.Open(buildPublicFixture(t, 18, 60), opts)
	if err != nil {
		t.Fatal(err)
	}
	batchEng, err := imgrn.Open(buildPublicFixture(t, 18, 60), opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(t, seqEng.Database(), 8)

	want := make([][]imgrn.Answer, len(queries))
	for i, qm := range queries {
		a, _, err := seqEng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}

	items := make([]imgrn.BatchItem, len(queries))
	for i, qm := range queries {
		items[i] = imgrn.BatchItem{Matrix: qm, Params: params}
	}
	results, bst := batchEng.QueryBatch(items, imgrn.BatchOptions{})
	if bst.Errors != 0 || bst.Queries != len(queries) {
		t.Fatalf("batch stats: %+v", bst)
	}
	if bst.Groups == 0 {
		t.Fatal("no shared traversal groups ran")
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		assertAnswersEqual(t, fmt.Sprintf("query %d", i), want[i], results[i].Answers)
	}
}

// TestShardedBatchMatchesSequential is the same contract on a P=3 sharded
// engine: one batch scatter vs a sequential sharded query loop.
func TestShardedBatchMatchesSequential(t *testing.T) {
	opts := imgrn.IndexOptions{D: 2, Samples: 24, Seed: 67}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.3, Samples: 32, Seed: 69}

	seqEng, err := imgrn.OpenSharded(buildPublicFixture(t, 18, 66), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	batchEng, err := imgrn.OpenSharded(buildPublicFixture(t, 18, 66), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(t, seqEng.Database(), 6)

	want := make([][]imgrn.Answer, len(queries))
	for i, qm := range queries {
		a, _, err := seqEng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}

	items := make([]imgrn.BatchItem, len(queries))
	for i, qm := range queries {
		items[i] = imgrn.BatchItem{Matrix: qm, Params: params}
	}
	done := make([]bool, len(queries))
	results, bst := batchEng.QueryBatch(items, imgrn.BatchOptions{
		OnResult: func(i int, _ imgrn.BatchResult) { done[i] = true },
	})
	if bst.Errors != 0 {
		t.Fatalf("batch stats: %+v", bst)
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		if !done[i] {
			t.Fatalf("item %d never streamed", i)
		}
		assertAnswersEqual(t, fmt.Sprintf("query %d", i), want[i], results[i].Answers)
		if results[i].Stats.QueryEdges == 0 {
			t.Fatalf("item %d: merged stats empty: %+v", i, results[i].Stats)
		}
	}
}

// TestShardedBatchTopK: per-item K on a sharded batch reproduces
// QueryTopK's ranked prefix (per-item cross-shard sink floors).
func TestShardedBatchTopK(t *testing.T) {
	opts := imgrn.IndexOptions{D: 2, Samples: 24, Seed: 71}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.2, Seed: 73, Analytic: true}

	seqEng, err := imgrn.OpenSharded(buildPublicFixture(t, 16, 70), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	batchEng, err := imgrn.OpenSharded(buildPublicFixture(t, 16, 70), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(t, seqEng.Database(), 4)

	const k = 3
	want := make([][]imgrn.Answer, len(queries))
	for i, qm := range queries {
		a, _, err := seqEng.QueryTopK(qm, params, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}
	items := make([]imgrn.BatchItem, len(queries))
	for i, qm := range queries {
		items[i] = imgrn.BatchItem{Matrix: qm, Params: params, K: k}
	}
	results, _ := batchEng.QueryBatch(items, imgrn.BatchOptions{})
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		if len(results[i].Answers) > k {
			t.Fatalf("item %d: %d answers exceed K=%d", i, len(results[i].Answers), k)
		}
		assertAnswersEqual(t, fmt.Sprintf("query %d", i), want[i], results[i].Answers)
	}
}

// TestEngineBatchSharedPerms: the opt-in shared-permutation mode on the
// public engine is deterministic across repeated calls and exercises the
// permutation pool.
func TestEngineBatchSharedPerms(t *testing.T) {
	opts := imgrn.IndexOptions{D: 2, Samples: 24, Seed: 77}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.3, Samples: 32, Seed: 79}
	eng, err := imgrn.Open(buildPublicFixture(t, 14, 76), opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(t, eng.Database(), 6)
	mkItems := func() []imgrn.BatchItem {
		items := make([]imgrn.BatchItem, len(queries))
		for i, qm := range queries {
			items[i] = imgrn.BatchItem{Matrix: qm, Params: params}
		}
		return items
	}
	r1, bst := eng.QueryBatch(mkItems(), imgrn.BatchOptions{SharedPerms: true})
	if bst.PermProbes > 0 && bst.PermFills == 0 {
		t.Fatalf("perm counters inconsistent: %+v", bst)
	}
	r2, _ := eng.QueryBatch(mkItems(), imgrn.BatchOptions{SharedPerms: true})
	for i := range r1 {
		if r1[i].Err != nil || r2[i].Err != nil {
			t.Fatalf("item %d: %v / %v", i, r1[i].Err, r2[i].Err)
		}
		assertAnswersEqual(t, fmt.Sprintf("query %d", i), r1[i].Answers, r2[i].Answers)
	}
}
