package imgrn_test

import (
	"fmt"
	"os"
	"testing"

	imgrn "github.com/imgrn/imgrn"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// shardBench is the Fig. 5-style large-N workload shared by the sharded
// scatter-gather sweep: an 800-source database over a small gene pool, so
// queries touch candidates on every shard (several hundred candidate
// matrices per query), plus a fixed extracted query set. N is large enough
// that the superlinear pairwise R*-tree traversal dominates: splitting the
// sources across P smaller per-shard trees is an algorithmic win even on a
// single-core host, which is what the scaling gate below relies on.
type shardBench struct {
	db      *imgrn.Database
	queries []*gene.Matrix
}

func setupShardBench(tb testing.TB) *shardBench {
	tb.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 800, NMin: 20, NMax: 40, LMin: 10, LMax: 20,
		Dist: synth.Uniform, GenePool: 40, Seed: 33,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := randgen.New(34)
	sb := &shardBench{db: ds.DB}
	for i := 0; i < 5; i++ {
		q, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			tb.Fatal(err)
		}
		sb.queries = append(sb.queries, q)
	}
	return sb
}

func openShardBench(tb testing.TB, sb *shardBench, p int) *imgrn.Engine {
	tb.Helper()
	eng, err := imgrn.OpenSharded(sb.db, imgrn.IndexOptions{
		D: 2, Samples: 24, Seed: 33, Bits: 1024, BufferPages: 1024,
	}, p)
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// shardBenchQuery runs one workload query with the analytic estimator:
// candidate verification splits evenly across shards with no shared
// Monte Carlo sampling state, so per-shard work is P-independent and
// the sweep isolates scatter-gather cost. (Under the MC estimator each
// shard would regenerate its own permutation batches, inflating total
// work; see DESIGN.md.)
func shardBenchQuery(tb testing.TB, eng *imgrn.Engine, sb *shardBench, i int) imgrn.QueryStats {
	params := imgrn.QueryParams{Gamma: 0.4, Alpha: 0.3, Seed: 1000 + uint64(i), Analytic: true}
	_, st, err := eng.Query(sb.queries[i%len(sb.queries)], params)
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// BenchmarkShardQuery sweeps the shard count over the Fig. 5 large-N
// workload (`make bench-shard` -> BENCH_shard.json). Each P>1 sub-run
// reports its wall-clock speedup over the P=1 sub-run (at N=800 the
// smaller per-shard R*-trees beat the single tree even on a single-core
// host; multicore hosts add parallel scatter on top) and the aggregate
// simulated page I/O per query, which grows mildly with P because every
// shard's tree is traversed. allocs/op across the sweep tracks the arena
// scratch reuse: P=8 must not balloon allocations over P=1.
func BenchmarkShardQuery(b *testing.B) {
	sb := setupShardBench(b)
	var p1NsPerOp float64
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			eng := openShardBench(b, sb, p)
			var io float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := shardBenchQuery(b, eng, sb, i)
				io += float64(st.IOCost)
			}
			b.StopTimer()
			b.ReportMetric(io/float64(b.N), "pages/query")
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if p == 1 {
				p1NsPerOp = nsPerOp
			} else if p1NsPerOp > 0 {
				b.ReportMetric(p1NsPerOp/nsPerOp, "speedup")
			}
		})
	}
}

// TestShardScalingGate is the CI benchmark gate for the sharding
// subsystem (`make bench-shard-smoke`). On the N=800 workload it enforces
// two ratios:
//
//   - time: P=4 must be at least 1.5x faster than P=1. At this N the win
//     is algorithmic (P smaller R*-trees cut the superlinear pairwise
//     traversal), so the bar holds even on a single-core runner; idle
//     multicore hosts clear it with a wide margin.
//   - allocations: P=8 allocs/op must stay within 1.1x of P=1, pinning
//     the arena scratch reuse — before the per-query arenas, fan-out
//     setup made allocations grow with P.
//
// Gated behind BENCH_SHARD=1 so ordinary `go test` runs — and loaded CI
// machines running the race detector — never flake on timing.
func TestShardScalingGate(t *testing.T) {
	if os.Getenv("BENCH_SHARD") != "1" {
		t.Skip("set BENCH_SHARD=1 to run the shard scaling gate")
	}
	sb := setupShardBench(t)
	run := func(p int) testing.BenchmarkResult {
		eng := openShardBench(t, sb, p)
		i := 0
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				shardBenchQuery(b, eng, sb, i)
				i++
			}
		})
	}
	p1 := run(1)
	p4 := run(4)
	p8 := run(8)
	t.Logf("P=1 %v ns/op %v allocs/op, P=4 %v ns/op (%.2fx), P=8 %v ns/op %v allocs/op",
		p1.NsPerOp(), p1.AllocsPerOp(), p4.NsPerOp(),
		float64(p1.NsPerOp())/float64(p4.NsPerOp()), p8.NsPerOp(), p8.AllocsPerOp())
	if float64(p4.NsPerOp()) > float64(p1.NsPerOp())/1.5 {
		t.Errorf("P=4 scatter-gather under 1.5x speedup over P=1: %v ns/op vs %v ns/op (%.2fx)",
			p4.NsPerOp(), p1.NsPerOp(), float64(p1.NsPerOp())/float64(p4.NsPerOp()))
	}
	if float64(p8.AllocsPerOp()) > 1.1*float64(p1.AllocsPerOp()) {
		t.Errorf("P=8 allocations outgrew P=1 by more than 10%%: %d allocs/op vs %d allocs/op",
			p8.AllocsPerOp(), p1.AllocsPerOp())
	}
}
