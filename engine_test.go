package imgrn_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	imgrn "github.com/imgrn/imgrn"
	"github.com/imgrn/imgrn/internal/randgen"
)

func TestEngineSaveIndexOpenSaved(t *testing.T) {
	db := buildPublicFixture(t, 12, 10)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := imgrn.OpenSaved(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := db.BySource(5).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 11, Analytic: true}
	a1, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := eng2.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("answers differ after reload: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Source != a2[i].Source || a1[i].Prob != a2[i].Prob {
			t.Errorf("answer %d differs after reload", i)
		}
	}
}

func TestEngineQueryTopK(t *testing.T) {
	db := buildPublicFixture(t, 15, 12)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.2, Seed: 13, Analytic: true}
	all, _, err := eng.QueryTopK(qm, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Skipf("fixture produced only %d matches", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Prob > all[i-1].Prob {
			t.Fatal("TopK results not ranked by probability")
		}
	}
	top3, _, err := eng.QueryTopK(qm, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top3))
	}
	for i := range top3 {
		if top3[i].Source != all[i].Source {
			t.Error("TopK(3) is not the prefix of the full ranking")
		}
	}
}

// TestEngineConcurrentQueries verifies the engine's internal
// serialization: concurrent queries race-free and each produces the same
// result as a serial run (run with -race in CI).
func TestEngineConcurrentQueries(t *testing.T) {
	db := buildPublicFixture(t, 20, 14)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 15, Analytic: true}
	queries := make([]*imgrn.Matrix, 8)
	want := make([]int, len(queries))
	for i := range queries {
		qm, err := db.BySource(i).SubMatrix(-1, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = qm
		a, _, err := eng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(a)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	got := make([]int, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := eng.Query(queries[i], params)
			errs[i] = err
			got[i] = len(a)
		}(i)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("concurrent query %d returned %d answers, serial run %d", i, got[i], want[i])
		}
	}
}

func TestEngineAddRemoveMatrix(t *testing.T) {
	db := buildPublicFixture(t, 8, 20)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 21, Analytic: true}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	// Grow: a ninth source carrying the same module (reuse source 0's
	// columns under a fresh source ID).
	base := db.BySource(0)
	cols := make([][]float64, base.NumGenes())
	genes := make([]imgrn.GeneID, base.NumGenes())
	for j := range cols {
		cols[j] = base.Col(j)
		genes[j] = base.Gene(j)
	}
	extra, err := imgrn.NewMatrix(99, genes, cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddMatrix(extra); err != nil {
		t.Fatal(err)
	}
	after, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Errorf("answers after add = %d, want %d", len(after), len(before)+1)
	}
	found := false
	for _, a := range after {
		if a.Source == 99 {
			found = true
		}
	}
	if !found {
		t.Error("added source not matched")
	}
	// Shrink back.
	if err := eng.RemoveMatrix(99); err != nil {
		t.Fatal(err)
	}
	final, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(before) {
		t.Errorf("answers after remove = %d, want %d", len(final), len(before))
	}
	if err := eng.RemoveMatrix(99); err == nil {
		t.Error("double remove should error")
	}
}

func TestEngineClusteringHelpers(t *testing.T) {
	db := buildPublicFixture(t, 6, 22)
	dm, err := imgrn.GRNDistanceMatrix(db, imgrn.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Rows != 6 || dm.Cols != 6 {
		t.Fatalf("distance matrix %dx%d", dm.Rows, dm.Cols)
	}
	res, err := imgrn.ClusterKMedoids(dm, 2, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 6 {
		t.Errorf("assignments = %d", len(res.Assign))
	}
	agg, err := imgrn.ClusterAgglomerative(dm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if imgrn.ClusterPurity(agg.Assign, res.Assign) < 0 {
		t.Error("purity must be non-negative")
	}
	d, err := imgrn.GRNDistance(db.BySource(0), db.BySource(1), imgrn.ClusterOptions{})
	if err != nil || d < 0 || d > 1 {
		t.Errorf("pairwise distance = %v (err %v)", d, err)
	}
}

func TestEngineRejectsNilInputs(t *testing.T) {
	db := buildPublicFixture(t, 2, 60)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 1, Samples: 8, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.5, Alpha: 0.5}
	if _, _, err := eng.Query(nil, params); err == nil {
		t.Error("nil matrix query should error")
	}
	if _, _, err := eng.QueryGraph(nil, params); err == nil {
		t.Error("nil graph query should error")
	}
	if _, err := eng.InferGraph(nil, params); err == nil {
		t.Error("nil inference input should error")
	}
	if err := eng.AddMatrix(nil); err == nil {
		t.Error("nil AddMatrix should error")
	}
}

// TestEngineConcurrentMixedWorkload races queries against online index
// mutations. The mutated sources (1000+i) carry genes disjoint from the
// fixture's {0, 1, 2} module, so the fixed queries' answer sets must equal
// the sequential run no matter how the operations interleave.
func TestEngineConcurrentMixedWorkload(t *testing.T) {
	db := buildPublicFixture(t, 16, 30)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 31, Analytic: true, Workers: 2}

	queries := make([]*imgrn.Matrix, 6)
	want := make([][]imgrn.Answer, len(queries))
	for i := range queries {
		qm, err := db.BySource(i).SubMatrix(-1, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = qm
		want[i], _, err = eng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
	}

	// mkExtra builds a matrix over genes unrelated to the query module.
	mkExtra := func(src int) *imgrn.Matrix {
		rng := randgen.New(uint64(src) * 7)
		genes := []imgrn.GeneID{imgrn.GeneID(2000 + src), imgrn.GeneID(3000 + src)}
		cols := make([][]float64, len(genes))
		for j := range cols {
			col := make([]float64, 16)
			for k := range col {
				col[k] = rng.Gaussian(0, 1)
			}
			cols[j] = col
		}
		m, err := imgrn.NewMatrix(src, genes, cols)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	// Mutators: add and remove disjoint extra sources.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				src := 1000 + w*10 + rep
				if err := eng.AddMatrix(mkExtra(src)); err != nil {
					errCh <- err
					return
				}
				if err := eng.RemoveMatrix(src); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Queriers: answer sets must match the sequential run.
	for i := range queries {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, _, err := eng.Query(queries[i], params)
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != len(want[i]) {
					errCh <- fmt.Errorf("query %d: %d answers, want %d", i, len(got), len(want[i]))
					return
				}
				for k := range got {
					if got[k].Source != want[i][k].Source || got[k].Prob != want[i][k].Prob {
						errCh <- fmt.Errorf("query %d: answer %d differs", i, k)
						return
					}
				}
			}(i)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestEngineQueryContextCancellation(t *testing.T) {
	db := buildPublicFixture(t, 10, 34)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 35, Analytic: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.QueryContext(ctx, qm, params); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext err = %v, want context.Canceled", err)
	}
	if _, _, err := eng.QueryTopKContext(ctx, qm, params, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryTopKContext err = %v, want context.Canceled", err)
	}
	// A live context still answers.
	if _, _, err := eng.QueryContext(context.Background(), qm, params); err != nil {
		t.Fatalf("background QueryContext: %v", err)
	}
}
