package imgrn_test

import (
	"bytes"
	"sync"
	"testing"

	imgrn "github.com/imgrn/imgrn"
)

func TestEngineSaveIndexOpenSaved(t *testing.T) {
	db := buildPublicFixture(t, 12, 10)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := imgrn.OpenSaved(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := db.BySource(5).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 11, Analytic: true}
	a1, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := eng2.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("answers differ after reload: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Source != a2[i].Source || a1[i].Prob != a2[i].Prob {
			t.Errorf("answer %d differs after reload", i)
		}
	}
}

func TestEngineQueryTopK(t *testing.T) {
	db := buildPublicFixture(t, 15, 12)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.2, Seed: 13, Analytic: true}
	all, _, err := eng.QueryTopK(qm, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Skipf("fixture produced only %d matches", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Prob > all[i-1].Prob {
			t.Fatal("TopK results not ranked by probability")
		}
	}
	top3, _, err := eng.QueryTopK(qm, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top3))
	}
	for i := range top3 {
		if top3[i].Source != all[i].Source {
			t.Error("TopK(3) is not the prefix of the full ranking")
		}
	}
}

// TestEngineConcurrentQueries verifies the engine's internal
// serialization: concurrent queries race-free and each produces the same
// result as a serial run (run with -race in CI).
func TestEngineConcurrentQueries(t *testing.T) {
	db := buildPublicFixture(t, 20, 14)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 15, Analytic: true}
	queries := make([]*imgrn.Matrix, 8)
	want := make([]int, len(queries))
	for i := range queries {
		qm, err := db.BySource(i).SubMatrix(-1, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = qm
		a, _, err := eng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(a)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	got := make([]int, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := eng.Query(queries[i], params)
			errs[i] = err
			got[i] = len(a)
		}(i)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("concurrent query %d returned %d answers, serial run %d", i, got[i], want[i])
		}
	}
}

func TestEngineAddRemoveMatrix(t *testing.T) {
	db := buildPublicFixture(t, 8, 20)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 21, Analytic: true}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	// Grow: a ninth source carrying the same module (reuse source 0's
	// columns under a fresh source ID).
	base := db.BySource(0)
	cols := make([][]float64, base.NumGenes())
	genes := make([]imgrn.GeneID, base.NumGenes())
	for j := range cols {
		cols[j] = base.Col(j)
		genes[j] = base.Gene(j)
	}
	extra, err := imgrn.NewMatrix(99, genes, cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddMatrix(extra); err != nil {
		t.Fatal(err)
	}
	after, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Errorf("answers after add = %d, want %d", len(after), len(before)+1)
	}
	found := false
	for _, a := range after {
		if a.Source == 99 {
			found = true
		}
	}
	if !found {
		t.Error("added source not matched")
	}
	// Shrink back.
	if err := eng.RemoveMatrix(99); err != nil {
		t.Fatal(err)
	}
	final, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(before) {
		t.Errorf("answers after remove = %d, want %d", len(final), len(before))
	}
	if err := eng.RemoveMatrix(99); err == nil {
		t.Error("double remove should error")
	}
}

func TestEngineClusteringHelpers(t *testing.T) {
	db := buildPublicFixture(t, 6, 22)
	dm, err := imgrn.GRNDistanceMatrix(db, imgrn.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Rows != 6 || dm.Cols != 6 {
		t.Fatalf("distance matrix %dx%d", dm.Rows, dm.Cols)
	}
	res, err := imgrn.ClusterKMedoids(dm, 2, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 6 {
		t.Errorf("assignments = %d", len(res.Assign))
	}
	agg, err := imgrn.ClusterAgglomerative(dm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if imgrn.ClusterPurity(agg.Assign, res.Assign) < 0 {
		t.Error("purity must be non-negative")
	}
	d, err := imgrn.GRNDistance(db.BySource(0), db.BySource(1), imgrn.ClusterOptions{})
	if err != nil || d < 0 || d > 1 {
		t.Errorf("pairwise distance = %v (err %v)", d, err)
	}
}

func TestEngineRejectsNilInputs(t *testing.T) {
	db := buildPublicFixture(t, 2, 60)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 1, Samples: 8, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.5, Alpha: 0.5}
	if _, _, err := eng.Query(nil, params); err == nil {
		t.Error("nil matrix query should error")
	}
	if _, _, err := eng.QueryGraph(nil, params); err == nil {
		t.Error("nil graph query should error")
	}
	if _, err := eng.InferGraph(nil, params); err == nil {
		t.Error("nil inference input should error")
	}
	if err := eng.AddMatrix(nil); err == nil {
		t.Error("nil AddMatrix should error")
	}
}
