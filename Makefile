# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-figures experiments experiments-full fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short keeps the Monte Carlo sizes CI-friendly under the race detector.
race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -25

bench:
	$(GO) test -bench=. -benchmem ./...

# Only the per-figure benchmarks (fast sanity pass).
bench-figures:
	$(GO) test -bench='BenchmarkFig' -benchtime=1x .

# The paper's evaluation at CI scale / Table-2 scale.
experiments:
	$(GO) run ./cmd/imgrn-bench -exp all

experiments-full:
	$(GO) run ./cmd/imgrn-bench -exp all -mode full

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out
