# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-figures bench-json bench-smoke bench-shard bench-shard-smoke bench-plan bench-plan-smoke bench-batch bench-batch-smoke experiments experiments-full fmt fmt-check vet metrics-smoke persist-smoke cluster-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short keeps the Monte Carlo sizes CI-friendly under the race detector.
race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -25

bench:
	$(GO) test -bench=. -benchmem ./...

# Only the per-figure benchmarks (fast sanity pass).
bench-figures:
	$(GO) test -bench='BenchmarkFig' -benchtime=1x .

# Inference-kernel benchmarks -> BENCH_inference.json (ns/op, allocs/op,
# derived batch-vs-scalar speedups). ParallelQuery runs at 1x so the sweep
# stays minutes-scale.
bench-json:
	{ $(GO) test -run xxx -bench 'BenchmarkInferPruned|BenchmarkEdgeProbabilityScalar|BenchmarkEdgeProbabilityBatch' -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkParallelQuery' -benchtime=1x -benchmem . ; } \
	| $(GO) run ./cmd/imgrn-benchjson > BENCH_inference.json
	@cat BENCH_inference.json

# CI gate: short fixed-size measurement asserting the batched inference
# kernel is not slower than the scalar path it replaces.
bench-smoke:
	BENCH_SMOKE=1 $(GO) test -run TestBatchNotSlowerThanScalar -v .

# Sharded scatter-gather sweep (P = 1, 2, 4, 8 over the Fig. 5 large-N
# workload) -> BENCH_shard.json (ns/op, pages/query, P-vs-1 speedups).
bench-shard:
	$(GO) test -run xxx -bench 'BenchmarkShardQuery' -benchmem . \
	| $(GO) run ./cmd/imgrn-benchjson > BENCH_shard.json
	@cat BENCH_shard.json

# CI gate: on the large-N workload a P=4 scatter-gather query must be at
# least 1.5x faster than the P=1 engine, and P=8 allocations per query
# must stay within 1.1x of P=1 (arena scratch reuse).
bench-shard-smoke:
	BENCH_SHARD=1 $(GO) test -run TestShardScalingGate -v .

# Adaptive planner vs fixed pipeline on the mixed easy/hard workload ->
# BENCH_plan.json (ns/op, allocs/op, derived adaptive-vs-fixed speedup).
bench-plan:
	$(GO) test -run xxx -bench 'BenchmarkPlanQuery' -benchmem . \
	| $(GO) run ./cmd/imgrn-benchjson > BENCH_plan.json
	@cat BENCH_plan.json

# CI gate: a warmed adaptive planner must never be more than 1.1x slower
# than the fixed pipeline on the mixed easy/hard workload.
bench-plan-smoke:
	BENCH_PLAN=1 $(GO) test -run TestPlanNotSlowerThanFixed -v .

# Multi-query batch engine vs a sequential loop on the B=8 mixed-width
# ad-hoc exploration workload -> BENCH_batch.json (ns/op, allocs/op,
# derived batch-vs-sequential speedups for both batch modes).
bench-batch:
	$(GO) test -run xxx -bench 'BenchmarkBatchQuery' -benchmem . \
	| $(GO) run ./cmd/imgrn-benchjson > BENCH_batch.json
	@cat BENCH_batch.json

# CI gate: the B=8 mixed-width batch (byte-identical default mode) must
# beat 8 sequential queries by at least 1.25x.
bench-batch-smoke:
	BENCH_BATCH=1 $(GO) test -run TestBatchNotSlowerThanSequential -v .

# The paper's evaluation at CI scale / Table-2 scale.
experiments:
	$(GO) run ./cmd/imgrn-bench -exp all

experiments-full:
	$(GO) run ./cmd/imgrn-bench -exp all -mode full

fmt:
	gofmt -w .

# Fails when any file is not gofmt-clean (CI gate).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# End-to-end observability smoke test: real server, /healthz, /metrics
# family assertions, slow-query log (see scripts/metrics_smoke.sh).
metrics-smoke:
	sh scripts/metrics_smoke.sh

# End-to-end crash-durability smoke test: durable server, mutation storm,
# kill -9, warm restart, byte-identical answers, no re-embedding (see
# scripts/persist_smoke.sh and DESIGN.md §12).
persist-smoke:
	sh scripts/persist_smoke.sh

# End-to-end distributed-serving smoke test: 3 durable shard servers +
# scatter-gather coordinator, replicated mutations, kill -9 failover,
# warm rejoin, byte-identical answers throughout (see
# scripts/cluster_smoke.sh and DESIGN.md §15).
cluster-smoke:
	sh scripts/cluster_smoke.sh

clean:
	rm -f cover.out
