package imgrn_test

import (
	"bytes"
	"testing"

	imgrn "github.com/imgrn/imgrn"
)

// TestEngineLifecycle walks one engine through its whole life: build,
// query, persist, reload, grow, shrink, re-query — verifying behavioural
// equivalence at every step. This is the integration test a downstream
// operator cares about.
func TestEngineLifecycle(t *testing.T) {
	db := buildPublicFixture(t, 10, 50)
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 51, Analytic: true}
	qm, err := db.BySource(2).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}

	// Build and baseline the answers.
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	initial, _, err := eng.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) == 0 {
		t.Fatal("fixture query matched nothing")
	}

	// Persist and reload.
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := imgrn.OpenSaved(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, _, err := eng2.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "reload", initial, reloaded)

	// Grow the reloaded engine with a clone of source 0 under a new ID.
	base := db.BySource(0)
	genes := make([]imgrn.GeneID, base.NumGenes())
	cols := make([][]float64, base.NumGenes())
	for j := range genes {
		genes[j] = base.Gene(j)
		cols[j] = base.Col(j)
	}
	extra, err := imgrn.NewMatrix(777, genes, cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.AddMatrix(extra); err != nil {
		t.Fatal(err)
	}
	grown, _, err := eng2.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != len(initial)+1 {
		t.Fatalf("after add: %d answers, want %d", len(grown), len(initial)+1)
	}

	// Persist the grown engine and reload it once more.
	buf.Reset()
	if err := eng2.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	eng3, err := imgrn.OpenSaved(&buf, eng2.Database())
	if err != nil {
		t.Fatal(err)
	}
	regrown, _, err := eng3.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "grown reload", grown, regrown)

	// Shrink back and verify we return to the initial answer set.
	if err := eng3.RemoveMatrix(777); err != nil {
		t.Fatal(err)
	}
	final, _, err := eng3.Query(qm, params)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "after remove", initial, final)
}

func assertSameAnswers(t *testing.T, step string, want, got []imgrn.Answer) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d answers, want %d", step, len(got), len(want))
	}
	wantSet := make(map[int]float64, len(want))
	for _, a := range want {
		wantSet[a.Source] = a.Prob
	}
	for _, a := range got {
		p, ok := wantSet[a.Source]
		if !ok {
			t.Errorf("%s: unexpected answer %d", step, a.Source)
			continue
		}
		if p != a.Prob {
			t.Errorf("%s: source %d Pr %v, want %v", step, a.Source, a.Prob, p)
		}
	}
}
