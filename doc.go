// Package imgrn is a library for ad-hoc inference and matching of gene
// regulatory networks (GRNs) over gene feature databases, implementing the
// IM-GRN system of "Efficient Ad-Hoc Graph Inference and Matching in
// Biological Databases" (SIGMOD 2017).
//
// # Overview
//
// A gene feature database holds N matrices M_i, each recording feature
// values of n_i genes over l_i individuals. Instead of materializing the
// GRN of every matrix for every possible inference threshold, IM-GRN keeps
// only the feature matrices and answers queries of the form:
//
//	given a query feature matrix M_Q, an inference threshold γ and a
//	probabilistic threshold α, find every M_i whose inferred GRN contains
//	a subgraph isomorphic to the GRN inferred from M_Q with appearance
//	probability above α.
//
// Edges are inferred with a randomization-based probabilistic measure: the
// probability that the Pearson correlation of two gene vectors exceeds the
// correlation against a randomly permuted vector. The library reduces this
// measure to Euclidean geometry (Lemma 1), prunes candidates with Markov
// bounds and pivot embeddings, and indexes the embedded vectors in an
// R*-tree with bit-vector signatures.
//
// # Quick start
//
//	db := imgrn.NewDatabase()
//	// … add matrices with imgrn.NewMatrix …
//	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2})
//	if err != nil { … }
//	answers, stats, err := eng.Query(queryMatrix, imgrn.QueryParams{
//		Gamma: 0.5, Alpha: 0.5,
//	})
//
// Beyond ad-hoc queries, the Engine supports ranked retrieval (QueryTopK),
// querying hand-drawn probabilistic patterns (QueryGraph), online growth
// and shrinkage of the database (AddMatrix / RemoveMatrix), and index
// persistence (SaveIndex / OpenSaved) so the Monte Carlo embedding phase
// runs once.
//
// # Durable lifecycle
//
// OpenDurable opens a crash-safe engine rooted in a data directory:
// mutations are fsynced to a per-shard write-ahead log before
// AddMatrix/RemoveMatrix return, Checkpoint (and Close) rotate index
// snapshots crash-safely, and reopening the same directory warm-boots by
// replaying the WAL tail over the latest snapshot — re-embedding only the
// replayed mutations. Acknowledged mutations survive kill -9; see
// DESIGN.md §12 for the on-disk formats and recovery protocol.
//
// GRNDistanceMatrix with ClusterKMedoids/ClusterAgglomerative
// groups data sources by regulatory structure, and NewCalibratedScorer
// generalizes the paper's randomization idea to any raw association
// measure (absolute Pearson, Spearman, mutual information).
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduced evaluation.
package imgrn
