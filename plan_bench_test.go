package imgrn_test

import (
	"os"
	"testing"

	imgrn "github.com/imgrn/imgrn"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// planBench is the mixed easy/hard workload the adaptive planner is
// measured on: queries alternate between narrow (n_Q = 2, too narrow for
// the batched kernel to amortize, few edges to verify) and wide
// (n_Q = 8, hundreds of candidate pairs stressing Lemma-5 pruning and
// verification). The mix is the point — a planner tuned on one shape
// must not regress the other.
type planBench struct {
	db      *imgrn.Database
	queries []*gene.Matrix
	widths  []int
}

func setupPlanBench(tb testing.TB) *planBench {
	tb.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 300, NMin: 15, NMax: 30, LMin: 10, LMax: 20,
		Dist: synth.Uniform, GenePool: 40, Seed: 51,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := randgen.New(52)
	pb := &planBench{db: ds.DB}
	for i := 0; i < 8; i++ {
		nq := 2
		if i%2 == 1 {
			nq = 8
		}
		q, _, err := ds.ExtractQuery(rng, nq)
		if err != nil {
			tb.Fatal(err)
		}
		pb.queries = append(pb.queries, q)
		pb.widths = append(pb.widths, nq)
	}
	return pb
}

func openPlanBench(tb testing.TB, pb *planBench) *imgrn.Engine {
	tb.Helper()
	eng, err := imgrn.Open(pb.db, imgrn.IndexOptions{
		D: 2, Samples: 24, Seed: 51, Bits: 1024, BufferPages: 1024,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func planBenchParams(i int) imgrn.QueryParams {
	// Analytic estimator for P-independent, noise-free verification cost
	// (same reasoning as shardBenchQuery).
	return imgrn.QueryParams{Gamma: 0.4, Alpha: 0.3, Seed: 2000 + uint64(i), Analytic: true}
}

// planBenchRequest mirrors what the server's -plan-adaptive loop builds
// per request: the full fixed stage set plus the query's shape and the
// index's §4 pivot-cost prior.
func planBenchRequest(eng *imgrn.Engine, nq int) plan.Request {
	bs := eng.IndexStats()
	mean := 0.0
	if bs.Vectors > 0 {
		mean = bs.PivotCostSum / float64(bs.Vectors)
	}
	return plan.Request{
		Pivot: true, Signatures: true, Markov: true, Batch: true,
		QueryGenes:    nq,
		DBVectors:     bs.Vectors,
		MeanPivotCost: mean,
	}
}

// runPlanBenchQuery executes workload query i under the planner (nil =
// fixed pipeline) and feeds realized stage statistics back.
func runPlanBenchQuery(tb testing.TB, eng *imgrn.Engine, pb *planBench, pl *imgrn.Planner, i int) {
	tb.Helper()
	k := i % len(pb.queries)
	params := planBenchParams(i)
	if pl != nil {
		p, err := pl.Plan(planBenchRequest(eng, pb.widths[k]))
		if err != nil {
			tb.Fatal(err)
		}
		params.Plan = p
	}
	_, st, err := eng.Query(pb.queries[k], params)
	if err != nil {
		tb.Fatal(err)
	}
	if pl != nil {
		pl.Observe(st.PlanFeedback())
	}
}

// warmPlanner runs the whole workload once untimed so the cost model is
// past its warm-up gate and its skip decisions are stable before
// measurement — the steady state a long-running server converges to.
func warmPlanner(tb testing.TB, eng *imgrn.Engine, pb *planBench) *imgrn.Planner {
	tb.Helper()
	pl := imgrn.NewPlanner(imgrn.PlannerOptions{MinQueries: len(pb.queries)})
	for i := 0; i < 2*len(pb.queries); i++ {
		runPlanBenchQuery(tb, eng, pb, pl, i)
	}
	return pl
}

// BenchmarkPlanQuery compares the fixed pipeline against a warmed
// adaptive planner on the mixed-width workload (`make bench-plan` ->
// BENCH_plan.json, with the derived adaptive-vs-fixed speedup). The
// planner's win here is dropping stages that do not pay on this
// workload; its bound is the smoke gate below.
func BenchmarkPlanQuery(b *testing.B) {
	pb := setupPlanBench(b)
	b.Run("fixed", func(b *testing.B) {
		eng := openPlanBench(b, pb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPlanBenchQuery(b, eng, pb, nil, i)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		eng := openPlanBench(b, pb)
		pl := warmPlanner(b, eng, pb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPlanBenchQuery(b, eng, pb, pl, i)
		}
	})
}

// TestPlanNotSlowerThanFixed is the CI benchmark gate for the planner
// seam (`make bench-plan-smoke`): on the mixed easy/hard workload a
// warmed adaptive planner must never be more than 1.1x slower than the
// fixed pipeline. The planner's skip rules are conservative by
// construction (a stage that pays for itself is never dropped), so the
// adaptive path should track the fixed one and win where stages are
// dead weight; the 1.1x margin absorbs planning overhead plus runner
// noise. Gated behind BENCH_PLAN=1 so ordinary `go test` runs never
// flake on timing.
func TestPlanNotSlowerThanFixed(t *testing.T) {
	if os.Getenv("BENCH_PLAN") != "1" {
		t.Skip("set BENCH_PLAN=1 to run the planner benchmark gate")
	}
	pb := setupPlanBench(t)

	fixedEng := openPlanBench(t, pb)
	fi := 0
	fixed := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			runPlanBenchQuery(b, fixedEng, pb, nil, fi)
			fi++
		}
	})

	adaptiveEng := openPlanBench(t, pb)
	pl := warmPlanner(t, adaptiveEng, pb)
	ai := 0
	adaptive := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			runPlanBenchQuery(b, adaptiveEng, pb, pl, ai)
			ai++
		}
	})

	t.Logf("fixed %v ns/op, adaptive %v ns/op (%.2fx)",
		fixed.NsPerOp(), adaptive.NsPerOp(),
		float64(fixed.NsPerOp())/float64(adaptive.NsPerOp()))
	if float64(adaptive.NsPerOp()) > 1.1*float64(fixed.NsPerOp()) {
		t.Errorf("adaptive planner slower than 1.1x fixed: %v ns/op vs %v ns/op",
			adaptive.NsPerOp(), fixed.NsPerOp())
	}
}
