module github.com/imgrn/imgrn

go 1.22
