package imgrn

import (
	"context"
	"errors"
	"io"
	"sync"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
	"github.com/imgrn/imgrn/internal/subiso"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// GeneID identifies a gene across data sources.
	GeneID = gene.ID
	// Matrix is one gene feature matrix M_i (genes × individuals).
	Matrix = gene.Matrix
	// Database is a gene feature database D of N matrices.
	Database = gene.Database
	// Catalog maps gene names to IDs.
	Catalog = gene.Catalog
	// Graph is a probabilistic GRN.
	Graph = grn.Graph
	// Edge is a probabilistic GRN edge.
	Edge = grn.Edge
	// Scorer is a pluggable gene-interaction measure.
	Scorer = grn.Scorer
	// IndexOptions configures index construction.
	IndexOptions = index.Options
	// QueryParams carries the per-query thresholds (γ, α of Definition 4),
	// the estimator settings (Samples, Seed, Analytic, OneSided), the
	// requested accuracy (Eps, Delta — the plan then picks the Lemma-2
	// sample count R = SampleSize(Eps, Delta) instead of Samples), the
	// intra-query worker budget (Workers), the optional per-query trace
	// collector (Trace, see NewQueryTrace), and an optional pinned
	// execution plan (Plan; nil resolves the fixed default plan, see
	// QueryPlan).
	QueryParams = core.Params
	// Answer is one IM-GRN query result: a matching data source with its
	// appearance probability and the matched probabilistic edges.
	Answer = core.Answer
	// QueryStats reports the per-query cost metrics of the paper's
	// Section 6 plus the engine's own accounting: wall-clock stage
	// durations (InferQuery, Traversal, Refinement, Total) and the
	// aggregate refinement sub-stage durations (MarkovPrune, MonteCarlo),
	// simulated page I/O (IOCost accesses, IOHits buffer absorptions),
	// pruning-power counters (NodePairsVisited/Pruned,
	// PointPairsChecked/Pruned, CandidateGenes, CandidateMatrices,
	// MatricesPrunedL5), edge-probability cache effectiveness
	// (CacheHits, CacheMisses), the query graph shape
	// (QueryVertices, QueryEdges), and the execution plan the query ran
	// under (Plan — never nil on a completed query).
	QueryStats = core.Stats
	// QueryPlan is one query's resolved execution plan: the Monte Carlo
	// sample count R (possibly derived from a requested (ε, δ) via the
	// Lemma-2 bound) and the prune-stage switches. Plans are immutable
	// once resolved and shared across shards; read the plan a query ran
	// under from QueryStats.Plan, or pin one via QueryParams.Plan.
	QueryPlan = plan.Plan
	// Planner builds adaptive query plans by evaluating the paper's §4
	// cost model online from observed stage statistics; feed it each
	// query's QueryStats.PlanFeedback() and install its Plan output on
	// QueryParams.Plan (the HTTP server automates this loop, see
	// internal/server.Server.Planner).
	Planner = plan.Planner
	// PlannerOptions tunes the adaptive Planner (warm-up query count,
	// skip margins, EWMA decay); the zero value takes the documented
	// defaults.
	PlannerOptions = plan.Options
	// PlanRequest describes one query to the planner: the fixed stage
	// set to start from, a requested accuracy (Eps, Delta) or sample
	// count, and the optional shape hints the cost model consults
	// (QueryGenes, CacheEntries, DBVectors, MeanPivotCost — zero means
	// unknown).
	PlanRequest = plan.Request
	// PlanFeedback is one finished query's realized stage statistics;
	// build it with QueryStats.PlanFeedback and fold it into the cost
	// model with Planner.Observe.
	PlanFeedback = plan.Feedback
	// QueryTrace collects per-stage spans (durations plus candidate
	// in/out counts) of one query; attach one via QueryParams.Trace and
	// read the spans back with Spans or Summary after the query returns.
	// A QueryTrace must not be reused across queries.
	QueryTrace = obs.Tracer
	// TraceSpan is one recorded pipeline stage of a traced query.
	TraceSpan = obs.Span
	// SubgraphMatch is one embedding found by MatchSubgraph.
	SubgraphMatch = subiso.Match
	// BatchItem is one query of a QueryBatch call: a query matrix (or a
	// pre-inferred query graph), its own QueryParams, and an optional
	// per-item top-k cutoff.
	BatchItem = core.BatchItem
	// BatchResult is one batch item's outcome: answers, stats, and the
	// item's own error (items fail independently).
	BatchResult = core.BatchResult
	// BatchOptions tunes one QueryBatch call: shared permutation batches,
	// the per-item timeout, and the streaming result callback.
	BatchOptions = core.BatchOptions
	// BatchStats aggregates batch-level counters: traversal groups shared,
	// permutation batches filled and probed, and per-item error counts.
	BatchStats = core.BatchStats
)

// NewQueryTrace starts a per-query trace collector. Tracing observes the
// pipeline without perturbing it: answers and RNG streams are identical
// with tracing on or off.
func NewQueryTrace() *QueryTrace { return obs.NewTracer() }

// NewPlanner returns an adaptive query planner (see Planner). The zero
// PlannerOptions value takes the documented defaults: plans stay fixed
// until 32 queries have been observed, and a stage is only skipped when
// the cost model says it costs at least twice what it saves.
func NewPlanner(opts PlannerOptions) *Planner { return plan.NewPlanner(opts) }

// WildcardGene is a query vertex label that matches any gene in
// MatchSubgraph.
const WildcardGene = subiso.Wildcard

// NewDatabase returns an empty gene feature database.
func NewDatabase() *Database { return gene.NewDatabase() }

// NewMatrix builds a feature matrix from per-gene column vectors; genes[j]
// labels cols[j] and all columns must have equal length (the number of
// individuals sampled).
func NewMatrix(source int, genes []GeneID, cols [][]float64) (*Matrix, error) {
	return gene.NewMatrix(source, genes, cols)
}

// NewCatalog returns an empty gene-name catalog.
func NewCatalog() *Catalog { return gene.NewCatalog() }

// NewGraph returns a probabilistic GRN with the given vertex labels and no
// edges; use SetEdge to add probabilistic interactions.
func NewGraph(genes []GeneID) *Graph { return grn.NewGraph(genes) }

// SaveDatabase / LoadDatabase persist databases in the binary IMGRNDB1
// format.
var (
	SaveDatabase = gene.SaveDatabase
	LoadDatabase = gene.LoadDatabase
)

// Engine couples a database with its IM-GRN index and answers queries.
// Methods are safe for concurrent use. Queries run concurrently: each
// query gets its own execution context (a private page-access accountant
// view plus an optional intra-query worker pool, see QueryParams.Workers)
// and takes only a read lock, so many queries proceed in parallel.
// Mutations (AddMatrix, RemoveMatrix) take the write lock and drain
// in-flight queries first. Exact edge-probability estimates are memoized
// across queries with identical estimator settings in a lock-striped
// cache shared by concurrent queries.
//
// An engine opened with OpenSharded partitions the database across
// NumShards independent index shards and runs every query scatter-gather
// (see internal/shard and DESIGN.md §10): mutations then lock only the one
// shard their source is placed on, and per-shard counters are available
// via ShardStats. The query API is identical either way.
type Engine struct {
	// mu is the index lock: queries hold it for reading, mutations and
	// serialization for writing. Unused when coord is set (the coordinator
	// locks per shard).
	mu  sync.RWMutex
	idx *index.Index

	// coord, when non-nil, replaces idx: the engine delegates every
	// operation to the sharded coordinator.
	coord *shard.Coordinator

	// store, when non-nil, is the durable lifecycle around coord (which
	// then aliases store.Coordinator): mutations are write-ahead logged
	// and fsynced before they are acknowledged, and Checkpoint/Close
	// rotate the log into snapshots. Queries go through coord unchanged.
	store *shard.Store

	// cacheMu guards the caches map alone; the caches themselves are
	// internally synchronized. Sharded engines keep caches per shard
	// inside the coordinator instead.
	cacheMu sync.Mutex
	caches  map[estimatorSig]*core.EdgeProbCache
}

// estimatorSig identifies one estimator configuration: caches must not be
// shared across configurations.
type estimatorSig struct {
	samples  int
	seed     uint64
	analytic bool
	oneSided bool
}

// cacheFor returns (creating if needed) the probability cache matching the
// estimator settings of params.
func (e *Engine) cacheFor(params QueryParams) *core.EdgeProbCache {
	sig := estimatorSig{
		samples:  params.Samples,
		seed:     params.Seed,
		analytic: params.Analytic,
		oneSided: params.OneSided,
	}
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if e.caches == nil {
		e.caches = make(map[estimatorSig]*core.EdgeProbCache)
	}
	c, ok := e.caches[sig]
	if !ok {
		c = core.NewEdgeProbCache(0)
		e.caches[sig] = c
	}
	return c
}

// invalidateCachesFor drops the memoized probabilities of one data source
// from every per-estimator cache; called when that source's data changes.
// Edge probabilities are keyed by (source, gene, gene), so a mutation can
// only stale its own source's entries — all other sources' memoized
// values, and the caches' lifetime hit counters, stay warm across
// mutations.
func (e *Engine) invalidateCachesFor(source int) {
	e.cacheMu.Lock()
	for _, c := range e.caches {
		c.InvalidateSource(source)
	}
	e.cacheMu.Unlock()
}

// Open builds the IM-GRN index over db and returns a query engine.
// Construction embeds every gene vector via cost-model-selected pivots and
// bulk-loads the R*-tree; it is the offline step of the system.
func Open(db *Database, opts IndexOptions) (*Engine, error) {
	idx, err := index.Build(db, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{idx: idx}, nil
}

// OpenSharded builds an engine whose database is partitioned round-robin
// across numShards independent index shards, each with its own R*-tree,
// page accountant and probability caches; queries run scatter-gather over
// the shards and mutations lock only the shard their source is placed on.
// numShards <= 1 builds a single-shard coordinator, which answers
// byte-identically to Open at any fixed seed; numShards > 1 answers are
// set-equal under the analytic estimator and statistically equivalent
// under Monte Carlo (shards draw (Seed, shard)-derived sample streams).
func OpenSharded(db *Database, opts IndexOptions, numShards int) (*Engine, error) {
	coord, err := shard.Build(db, shard.Options{NumShards: numShards, Index: opts})
	if err != nil {
		return nil, err
	}
	return &Engine{coord: coord}, nil
}

// DurableOptions configures a durable engine's data directory and
// checkpoint policy (see OpenDurable).
type DurableOptions = shard.DurableOptions

// DurableStats reports a durable engine's boot provenance (warm or cold,
// records replayed, torn bytes truncated) and its WAL/checkpoint
// counters.
type DurableStats = shard.DurableStats

// OpenDurable opens a durable sharded engine rooted at dopts.Dir
// (DESIGN.md §12). When the directory holds committed state the engine
// warm-boots — per-shard snapshots are loaded, skipping the Monte Carlo
// embedding, and the write-ahead log is replayed over them — and db is
// ignored (it may be nil). Otherwise the engine is built from db like
// OpenSharded and immediately checkpointed, so the state is durable
// before OpenDurable returns.
//
// Every AddMatrix/RemoveMatrix on a durable engine is applied, appended
// to its shard's WAL and fsynced before the call returns: a mutation
// that returned nil survives kill -9. The log is folded into fresh
// snapshots when it exceeds DurableOptions.CheckpointBytes, on the
// optional CheckpointEvery timer, on Checkpoint, and on Close.
func OpenDurable(db *Database, opts IndexOptions, numShards int, dopts DurableOptions) (*Engine, error) {
	st, err := shard.OpenDurable(db, shard.Options{NumShards: numShards, Index: opts}, dopts)
	if err != nil {
		return nil, err
	}
	return &Engine{coord: st.Coordinator, store: st}, nil
}

// Durable reports whether the engine has a durable store attached.
func (e *Engine) Durable() bool { return e.store != nil }

// DurableStats reports the durable store's counters; the zero value for
// a non-durable engine.
func (e *Engine) DurableStats() DurableStats {
	if e.store == nil {
		return DurableStats{}
	}
	return e.store.DurableStats()
}

// Checkpoint forces a durable engine to fold its write-ahead log into a
// new snapshot generation now. No-op (nil) on a non-durable engine.
func (e *Engine) Checkpoint() error {
	if e.store == nil {
		return nil
	}
	return e.store.Checkpoint()
}

// Close releases the engine. A durable engine checkpoints outstanding
// mutations first (so the next boot replays nothing) and closes its log
// segments; a non-durable engine's Close is a no-op. The engine is
// unusable for mutations afterwards.
func (e *Engine) Close() error {
	if e.store == nil {
		return nil
	}
	return e.store.Close()
}

// NumShards reports the engine's shard count (1 for an unsharded engine).
func (e *Engine) NumShards() int {
	if e.coord != nil {
		return e.coord.NumShards()
	}
	return 1
}

// ShardInfo is one shard's observability snapshot: partition size,
// operation counts, and lifetime I/O and cache counters.
type ShardInfo = shard.ShardInfo

// ShardStats reports per-shard counters in shard order; nil for an
// unsharded engine.
func (e *Engine) ShardStats() []ShardInfo {
	if e.coord == nil {
		return nil
	}
	return e.coord.Snapshot()
}

// OpenSaved reconstructs an engine from an index previously written with
// SaveIndex, skipping the expensive Monte Carlo embedding phase. db must be
// the database the index was built over.
func OpenSaved(r io.Reader, db *Database) (*Engine, error) {
	idx, err := index.Load(r, db)
	if err != nil {
		return nil, err
	}
	return &Engine{idx: idx}, nil
}

// SaveIndex serializes the engine's index so a later process can OpenSaved
// it without re-embedding the database. Sharded engines cannot be saved
// yet: rebuild with OpenSharded at startup (per-shard indexes rebuild in
// parallel).
func (e *Engine) SaveIndex(w io.Writer) error {
	if e.coord != nil {
		return errShardedSave
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.idx.Save(w)
}

// errShardedSave rejects SaveIndex on sharded engines.
var errShardedSave = errors.New("imgrn: sharded engine does not support SaveIndex")

// Database returns the indexed database.
func (e *Engine) Database() *Database {
	if e.coord != nil {
		return e.coord.Database()
	}
	return e.idx.DB()
}

// IndexStats reports construction statistics (vectors, nodes, pages,
// build time); for a sharded engine they aggregate across shards.
func (e *Engine) IndexStats() index.BuildStats {
	if e.coord != nil {
		return e.coord.IndexStats()
	}
	return e.idx.Stats()
}

// Query answers an IM-GRN query: it infers the query GRN from mq at
// params.Gamma and returns every database matrix whose inferred GRN
// contains it with probability above params.Alpha.
func (e *Engine) Query(mq *Matrix, params QueryParams) ([]Answer, QueryStats, error) {
	return e.QueryContext(context.Background(), mq, params)
}

// QueryContext is Query under an explicit context: the query honors ctx
// cancellation and deadlines at traversal and refinement loop boundaries
// (returning ctx.Err()), and params.Workers > 1 parallelizes candidate
// refinement and Monte Carlo query inference within the query. Concurrent
// QueryContext calls proceed in parallel, each with its own page-access
// accounting.
func (e *Engine) QueryContext(ctx context.Context, mq *Matrix, params QueryParams) ([]Answer, QueryStats, error) {
	if mq == nil {
		return nil, QueryStats{}, errNilQuery
	}
	if e.coord != nil {
		return e.coord.QueryContext(ctx, mq, params)
	}
	// Resolve the plan before cache selection: the cache key includes the
	// sample count, which an (Eps, Delta) accuracy request rewrites.
	params, err := params.ResolvePlan()
	if err != nil {
		return nil, QueryStats{}, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	params.Cache = e.cacheFor(params)
	proc, err := core.NewProcessor(e.idx, params)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return proc.QueryContext(ctx, mq)
}

// QueryGraph answers an IM-GRN query for an already-constructed query GRN
// (e.g. a hand-curated biomarker pattern).
func (e *Engine) QueryGraph(q *Graph, params QueryParams) ([]Answer, QueryStats, error) {
	return e.QueryGraphContext(context.Background(), q, params)
}

// QueryGraphContext is QueryGraph under an explicit context; see
// QueryContext for the context and concurrency semantics.
func (e *Engine) QueryGraphContext(ctx context.Context, q *Graph, params QueryParams) ([]Answer, QueryStats, error) {
	if q == nil {
		return nil, QueryStats{}, errNilQuery
	}
	if e.coord != nil {
		return e.coord.QueryGraphContext(ctx, q, params)
	}
	params, err := params.ResolvePlan()
	if err != nil {
		return nil, QueryStats{}, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	params.Cache = e.cacheFor(params)
	proc, err := core.NewProcessor(e.idx, params)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return proc.QueryGraphContext(ctx, q)
}

// AddMatrix indexes a new data source online. The matrix becomes
// immediately queryable, and the grown engine answers exactly like one
// rebuilt from scratch over the enlarged database.
func (e *Engine) AddMatrix(m *Matrix) error {
	if e.store != nil {
		return e.store.AddMatrix(m)
	}
	if e.coord != nil {
		return e.coord.AddMatrix(m)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.idx.AddMatrix(m); err != nil {
		return err
	}
	e.invalidateCachesFor(m.Source)
	return nil
}

// RemoveMatrix drops a data source from the engine and its database.
func (e *Engine) RemoveMatrix(source int) error {
	if e.store != nil {
		return e.store.RemoveMatrix(source)
	}
	if e.coord != nil {
		return e.coord.RemoveMatrix(source)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.idx.RemoveMatrix(source); err != nil {
		return err
	}
	e.invalidateCachesFor(source)
	return nil
}

// QueryTopK answers an IM-GRN query and returns only the k matches with
// the highest appearance probability (ties break toward smaller source
// IDs). k <= 0 returns all matches ranked.
func (e *Engine) QueryTopK(mq *Matrix, params QueryParams, k int) ([]Answer, QueryStats, error) {
	return e.QueryTopKContext(context.Background(), mq, params, k)
}

// QueryTopKContext is QueryTopK under an explicit context; see
// QueryContext for the context and concurrency semantics.
func (e *Engine) QueryTopKContext(ctx context.Context, mq *Matrix, params QueryParams, k int) ([]Answer, QueryStats, error) {
	if mq == nil {
		return nil, QueryStats{}, errNilQuery
	}
	if e.coord != nil {
		// Sharded top-k streams per-shard answers into a bounded merge with
		// cross-shard Markov-bound early termination (internal/shard).
		return e.coord.QueryTopKContext(ctx, mq, params, k)
	}
	answers, stats, err := e.QueryContext(ctx, mq, params)
	if err != nil {
		return nil, stats, err
	}
	mark := params.Trace.Start(obs.StageTopK)
	in := len(answers)
	core.RankAnswers(answers)
	if k > 0 && len(answers) > k {
		answers = answers[:k]
	}
	mark.End(in, len(answers))
	return answers, stats, nil
}

// QueryBatch answers a batch of queries in one engine pass (DESIGN.md
// §14): queries whose traversal parameters agree share a single R*-tree
// descent per γ-group, plans resolve once per distinct request group,
// and — with BatchOptions.SharedPerms — Monte Carlo permutation batches
// are drawn once per probed column per batch. It returns one result per
// item in item order; opts.OnResult streams each item as it completes.
// Item errors are reported per item, never as a batch failure.
//
// With SharedPerms off, the results are byte-identical to calling Query
// for each item sequentially on this engine; see BatchOptions for the
// SharedPerms determinism contract.
func (e *Engine) QueryBatch(items []BatchItem, opts BatchOptions) ([]BatchResult, BatchStats) {
	return e.QueryBatchContext(context.Background(), items, opts)
}

// QueryBatchContext is QueryBatch under an explicit context: cancelling
// ctx aborts the remaining items (each reporting the context error), and
// opts.ItemTimeout bounds each item's active phases individually.
func (e *Engine) QueryBatchContext(ctx context.Context, items []BatchItem, opts BatchOptions) ([]BatchResult, BatchStats) {
	if e.coord != nil {
		return e.coord.QueryBatch(ctx, items, opts)
	}
	// Resolve plans before cache selection: the cache key includes the
	// sample count, which an (Eps, Delta) accuracy request rewrites.
	// core.QueryBatch re-runs the (idempotent) resolution and re-derives
	// the same per-item errors for items skipped here.
	errs := core.ResolveBatchPlans(items)
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i := range items {
		if errs[i] == nil {
			items[i].Params.Cache = e.cacheFor(items[i].Params)
		}
	}
	return core.QueryBatch(ctx, e.idx, items, opts)
}

// errNilQuery rejects nil query inputs at the public boundary.
var errNilQuery = errors.New("imgrn: nil query")

// InferGraph reconstructs the probabilistic GRN of a matrix at inference
// threshold gamma with the paper's randomized measure.
func (e *Engine) InferGraph(m *Matrix, params QueryParams) (*Graph, error) {
	if m == nil {
		return nil, errNilQuery
	}
	if e.coord != nil {
		return e.coord.InferGraph(m, params)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	proc, err := core.NewProcessor(e.idx, params)
	if err != nil {
		return nil, err
	}
	return proc.InferQueryGraph(m)
}

// InferGraph reconstructs a probabilistic GRN from a matrix without an
// engine, using the given scorer and threshold — the standalone inference
// entry point (Definition 2/3).
func InferGraph(m *Matrix, sc Scorer, gamma float64) (*Graph, error) {
	return grn.Infer(m, sc, gamma)
}

// Scorers for InferGraph. RandomizedScorer is the paper's IM-GRN measure;
// CorrelationScorer, PartialCorrScorer and MutualInfoScorer are the
// comparison measures.
func NewRandomizedScorer(seed uint64, samples int) Scorer {
	return grn.NewRandomizedScorer(seed, samples)
}

// NewCorrelationScorer returns the absolute-Pearson relevance-network
// measure.
func NewCorrelationScorer() Scorer { return grn.CorrelationScorer{} }

// NewAnalyticScorer returns the fast normal-approximation variant of the
// IM-GRN measure.
func NewAnalyticScorer() Scorer { return grn.AnalyticScorer{} }

// NewPartialCorrScorer returns the partial-correlation (pCorr) measure
// with the given ridge regularization.
func NewPartialCorrScorer(ridge float64) Scorer {
	return &grn.PartialCorrScorer{Ridge: ridge}
}

// NewMutualInfoScorer returns the mutual-information measure with the
// given histogram bin count (0 = automatic).
func NewMutualInfoScorer(bins int) Scorer { return &grn.MutualInfoScorer{Bins: bins} }

// VectorScore is a raw pairwise association measure over feature vectors,
// used with NewCalibratedScorer.
type VectorScore = grn.VectorScore

// Raw measures for NewCalibratedScorer: absolute Pearson (reproduces the
// paper's Definition-2 measure), absolute Spearman rank correlation, and
// histogram mutual information.
var (
	AbsPearsonVec = grn.AbsPearsonVec
	SpearmanVec   = grn.SpearmanVec
	MutualInfoVec = grn.MutualInfoVec
)

// NewCalibratedScorer generalizes the paper's randomization idea to any
// association measure: the returned scorer reports the probability that
// the observed raw score beats the score against a permuted partner
// vector (the future-work direction of Section 2.2).
func NewCalibratedScorer(label string, fn VectorScore, seed uint64, samples int) Scorer {
	return grn.NewCalibratedScorer(label, fn, seed, samples)
}

// Clustering (the Example-2 workflow): group data sources by the
// similarity of their inferred regulatory structures.
type (
	// ClusterOptions tunes the GRN distance (scorer, threshold, panel cap).
	ClusterOptions = cluster.Options
	// ClusterResult is a clustering assignment with representatives.
	ClusterResult = cluster.Result
	// DistanceMatrix is a dense symmetric source-by-source distance
	// matrix; index it with At(i, j).
	DistanceMatrix = vecmath.Matrix
)

// GRNDistanceMatrix computes pairwise regulatory-structure distances
// between all database matrices.
func GRNDistanceMatrix(db *Database, opts ClusterOptions) (*DistanceMatrix, error) {
	return cluster.DistanceMatrix(db, opts)
}

// GRNDistance is the pairwise form of GRNDistanceMatrix.
func GRNDistance(a, b *Matrix, opts ClusterOptions) (float64, error) {
	return cluster.Distance(a, b, opts)
}

// ClusterKMedoids clusters the distance matrix into k groups with
// PAM-style k-medoids; the medoid matrices are natural IM-GRN query
// patterns for their clusters.
func ClusterKMedoids(dm *DistanceMatrix, k, restarts int, seed uint64) (ClusterResult, error) {
	return cluster.KMedoids(dm, k, restarts, randgen.New(seed))
}

// ClusterAgglomerative cuts an average-linkage dendrogram at k clusters.
func ClusterAgglomerative(dm *DistanceMatrix, k int) (ClusterResult, error) {
	return cluster.Agglomerative(dm, k)
}

// ClusterPurity scores a clustering against ground-truth labels.
func ClusterPurity(assign, labels []int) float64 { return cluster.Purity(assign, labels) }

// MatchSubgraph finds embeddings of query q in data graph g whose
// appearance probability exceeds alpha — general label-constrained
// probabilistic subgraph isomorphism over materialized GRNs, supporting
// duplicate labels and WildcardGene.
func MatchSubgraph(q, g *Graph, alpha float64) []SubgraphMatch {
	return subiso.Find(q, g, subiso.Options{Alpha: alpha})
}
