// Ad-hoc influence graphs (Appendix A of the paper): the IM-GRN machinery
// generalizes to any domain where graph edges are inferred on the fly from
// per-vertex feature data. Here, vertices are social-media accounts and a
// feature vector records an account's daily activity on an ad-hoc topic;
// an "influence" edge exists when two accounts' activity profiles are
// correlated above the randomized confidence threshold. Communities whose
// inferred influence pattern matches a query pattern (e.g. a known
// coordinated-amplification motif) are retrieved without ever
// materializing the influence networks.
//
// Run with: go run ./examples/adhocsocial
package main

import (
	"fmt"
	"log"
	"math/rand"

	imgrn "github.com/imgrn/imgrn"
)

// Account IDs shared across communities (the same public figures are
// discussed everywhere); per-community accounts fill the rest.
const (
	seedAccount  imgrn.GeneID = 0 // the originator of a campaign
	amplifierOne imgrn.GeneID = 1
	amplifierTwo imgrn.GeneID = 2
)

// synthesizeCommunity builds one community's topic-activity matrix over a
// number of days. Coordinated communities copy the seed account's activity
// with a delay-free linear response; organic ones act independently.
func synthesizeCommunity(rng *rand.Rand, src, days int, coordinated bool) (*imgrn.Matrix, error) {
	seed := make([]float64, days)
	for i := range seed {
		seed[i] = rng.NormFloat64()
	}
	activity := func(coef float64) []float64 {
		col := make([]float64, days)
		for i := range col {
			base := 0.0
			if coordinated {
				base = coef * seed[i]
			}
			col[i] = base + 0.4*rng.NormFloat64()
		}
		return col
	}
	accounts := []imgrn.GeneID{seedAccount, amplifierOne, amplifierTwo,
		imgrn.GeneID(1000 + src), imgrn.GeneID(2000 + src)}
	cols := [][]float64{
		activity(1),   // seed account
		activity(0.9), // amplifier 1 mirrors the seed when coordinated
		activity(0.9), // amplifier 2
		activity(0),   // organic bystanders
		activity(0),
	}
	return imgrn.NewMatrix(src, accounts, cols)
}

func main() {
	rng := rand.New(rand.NewSource(99))

	db := imgrn.NewDatabase()
	coordinated := map[int]bool{}
	for src := 0; src < 36; src++ {
		isCoord := src%4 == 0
		coordinated[src] = isCoord
		m, err := synthesizeCommunity(rng, src, 30+rng.Intn(20), isCoord)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}

	// The analyst draws the amplification motif directly as a probabilistic
	// pattern: seed influences both amplifiers.
	pattern := imgrn.NewGraph([]imgrn.GeneID{seedAccount, amplifierOne, amplifierTwo})
	pattern.SetEdge(0, 1, 0.9)
	pattern.SetEdge(0, 2, 0.9)

	answers, qs, err := eng.QueryGraph(pattern, imgrn.QueryParams{
		Gamma: 0.8, Alpha: 0.6, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("amplification motif: %d accounts, %d influence edges\n",
		pattern.NumVertices(), pattern.NumEdges())
	fmt.Printf("scanned %d communities with %d page accesses, %d candidates\n",
		db.Len(), qs.IOCost, qs.CandidateGenes)
	tp, fp := 0, 0
	for _, a := range answers {
		tag := "organic"
		if coordinated[a.Source] {
			tag = "coordinated"
			tp++
		} else {
			fp++
		}
		fmt.Printf("  community %-3d  Pr{motif} = %.4f  [%s]\n", a.Source, a.Prob, tag)
	}
	fmt.Printf("=> flagged %d coordinated communities (%d false positives) without materializing any influence network\n", tp, fp)
}
