// Quickstart: build a small gene feature database, index it, and run one
// ad-hoc inference-and-matching (IM-GRN) query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	imgrn "github.com/imgrn/imgrn"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A database of 30 data sources. Every source measures the same three
	// interacting genes (0 regulates 1 and represses 2) plus two unrelated
	// genes, over its own patient cohort.
	db := imgrn.NewDatabase()
	for src := 0; src < 30; src++ {
		patients := 15 + rng.Intn(10)
		driver := make([]float64, patients)
		for i := range driver {
			driver[i] = rng.NormFloat64()
		}
		column := func(coef, noise float64) []float64 {
			col := make([]float64, patients)
			for i := range col {
				col[i] = coef*driver[i] + noise*rng.NormFloat64()
			}
			return col
		}
		m, err := imgrn.NewMatrix(src,
			[]imgrn.GeneID{0, 1, 2, imgrn.GeneID(10 + src), imgrn.GeneID(50 + src)},
			[][]float64{
				column(1.0, 0.1),  // gene 0
				column(0.9, 0.2),  // gene 1, activated by 0
				column(-0.8, 0.2), // gene 2, repressed by 0
				column(0, 1),      // noise gene
				column(0, 1),      // noise gene
			})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			log.Fatal(err)
		}
	}

	// Offline: build the IM-GRN index (pivot embedding + R*-tree +
	// bit-vector signatures). The index is threshold-independent, so any
	// ad-hoc γ/α can be queried later.
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.IndexStats()
	fmt.Printf("indexed %d gene vectors into %d R*-tree nodes (height %d) in %v\n",
		st.Vectors, st.TreeNodes, st.TreeHeight, st.Elapsed)

	// Online: extract a query matrix (the module of genes 0, 1, 2 from
	// source 7) and ask which data sources contain the same regulatory
	// structure with confidence above α.
	query, err := db.BySource(7).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	answers, qs, err := eng.Query(query, imgrn.QueryParams{
		Gamma: 0.6, // ad-hoc inference threshold
		Alpha: 0.4, // probabilistic matching threshold
		Seed:  2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query GRN: %d genes, %d inferred edges\n", qs.QueryVertices, qs.QueryEdges)
	fmt.Printf("traversal: %d node pairs visited, %d candidate genes, %d page accesses\n",
		qs.NodePairsVisited, qs.CandidateGenes, qs.IOCost)
	fmt.Printf("%d matching data sources (showing up to 10):\n", len(answers))
	for i, a := range answers {
		if i == 10 {
			break
		}
		fmt.Printf("  source %-3d  Pr{G} = %.4f\n", a.Source, a.Prob)
	}
}
