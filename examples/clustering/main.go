// Disease clustering (the first half of the paper's Example 2): cohorts
// from heterogeneous sources are grouped by the similarity of their
// inferred regulatory structures, and each cluster's medoid becomes a
// representative query pattern — exactly the "representative GRN pattern
// in a cluster" the IM-GRN problem statement takes as input.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math/rand"

	imgrn "github.com/imgrn/imgrn"
)

// Three latent disease phases with distinct wirings over a shared panel.
func synthesizePhase(rng *rand.Rand, src, patients int, phase int) (*imgrn.Matrix, error) {
	g := make([][]float64, 5)
	for j := range g {
		g[j] = make([]float64, patients)
	}
	for i := 0; i < patients; i++ {
		driver := rng.NormFloat64()
		g[0][i] = driver
		noise := func() float64 { return 0.25 * rng.NormFloat64() }
		switch phase {
		case 0: // early: hub 0 → {1, 2}
			g[1][i] = 0.9*driver + noise()
			g[2][i] = 0.9*driver + noise()
			g[3][i] = rng.NormFloat64()
		case 1: // progressive: chain 0 → 1 → 3
			g[1][i] = 0.9*driver + noise()
			g[3][i] = 0.9*g[1][i] + noise()
			g[2][i] = rng.NormFloat64()
		default: // remission: everything decoupled
			g[1][i] = rng.NormFloat64()
			g[2][i] = rng.NormFloat64()
			g[3][i] = rng.NormFloat64()
		}
		g[4][i] = rng.NormFloat64()
	}
	return imgrn.NewMatrix(src, []imgrn.GeneID{0, 1, 2, 3, 4}, g)
}

func main() {
	rng := rand.New(rand.NewSource(17))
	db := imgrn.NewDatabase()
	truth := make([]int, 0, 30)
	for src := 0; src < 30; src++ {
		phase := src % 3
		truth = append(truth, phase)
		m, err := synthesizePhase(rng, src, 25+rng.Intn(10), phase)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			log.Fatal(err)
		}
	}

	// Pairwise regulatory-structure distances (Jaccard over confident
	// edges of the inferred GRNs).
	dm, err := imgrn.GRNDistanceMatrix(db, imgrn.ClusterOptions{Gamma: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	res, err := imgrn.ClusterKMedoids(dm, 3, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d cohorts into %d groups (purity vs hidden phases: %.2f)\n",
		db.Len(), res.K(), imgrn.ClusterPurity(res.Assign, truth))
	for c, medoid := range res.Medoids {
		var members []int
		for i, a := range res.Assign {
			if a == c {
				members = append(members, db.Matrix(i).Source)
			}
		}
		fmt.Printf("  cluster %d: medoid cohort %d, members %v\n",
			c, db.Matrix(medoid).Source, members)
	}

	// Use a medoid as the representative IM-GRN query pattern: which other
	// cohorts share its structure with high confidence?
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// Query with the medoid of cohort 0's cluster (the hub-wiring phase);
	// its panel {0, 1, 2} carries that cluster's signature edges.
	c0 := res.Assign[0]
	medoid := db.Matrix(res.Medoids[c0])
	query, err := medoid.SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	answers, qs, err := eng.Query(query, imgrn.QueryParams{Gamma: 0.7, Alpha: 0.5, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIM-GRN search with cluster-%d medoid (cohort %d) as pattern: %d matches, %d query edges\n",
		c0, medoid.Source, len(answers), qs.QueryEdges)
	agree := 0
	for _, a := range answers {
		for i := range res.Assign {
			if db.Matrix(i).Source == a.Source && res.Assign[i] == c0 {
				agree++
			}
		}
	}
	fmt.Printf("%d of %d matches fall in the medoid's own cluster\n", agree, len(answers))
}
