// Biomarker confirmation (Example 1 of the paper): a candidate cancer
// biomarker — a small GRN pattern inferred from cancer patient samples —
// is validated by retrieving the data sources in a reference compendium
// whose inferred GRNs contain the same interaction structure with high
// confidence. Retrieved sources serve as supporting evidence and case
// studies for the biomarker.
//
// Run with: go run ./examples/biomarker
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	imgrn "github.com/imgrn/imgrn"
)

// Pathway genes of the candidate biomarker: TP53 signalling toy module.
var pathway = struct {
	TP53, MDM2, CDKN1A, BAX imgrn.GeneID
}{TP53: 1, MDM2: 2, CDKN1A: 3, BAX: 4}

var geneNames = map[imgrn.GeneID]string{
	1: "TP53", 2: "MDM2", 3: "CDKN1A", 4: "BAX",
}

// synthesizeCohort produces one data source. If active, the pathway genes
// co-vary (the hallmark wiring is present); otherwise they are independent.
func synthesizeCohort(rng *rand.Rand, src, patients int, active bool) (*imgrn.Matrix, error) {
	p53 := make([]float64, patients)
	for i := range p53 {
		p53[i] = rng.NormFloat64()
	}
	dep := func(coef, noise float64) []float64 {
		col := make([]float64, patients)
		for i := range col {
			base := 0.0
			if active {
				base = coef * p53[i]
			}
			col[i] = base + noise*rng.NormFloat64()
		}
		return col
	}
	genes := []imgrn.GeneID{pathway.TP53, pathway.MDM2, pathway.CDKN1A, pathway.BAX,
		imgrn.GeneID(100 + src), imgrn.GeneID(200 + src)}
	cols := [][]float64{
		dep(1, 0.1),   // TP53 itself
		dep(-0.9, .3), // MDM2: negative feedback
		dep(0.9, 0.3), // CDKN1A: activated
		dep(0.8, 0.4), // BAX: activated
		dep(0, 1),     // unrelated housekeeping genes
		dep(0, 1),
	}
	return imgrn.NewMatrix(src, genes, cols)
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Reference compendium: 40 cohorts, 15 of which carry the active
	// pathway (these are the known-cancer cohorts we hope to retrieve).
	db := imgrn.NewDatabase()
	activeSources := map[int]bool{}
	for src := 0; src < 40; src++ {
		active := src%3 == 0
		activeSources[src] = active
		m, err := synthesizeCohort(rng, src, 20+rng.Intn(15), active)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// The candidate biomarker arrives as a query feature matrix measured
	// on a fresh cancer cohort (not in the database).
	queryCohort, err := synthesizeCohort(rng, -1, 25, true)
	if err != nil {
		log.Fatal(err)
	}
	queryMatrix, err := queryCohort.SubMatrix(-1, []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}

	answers, qs, err := eng.Query(queryMatrix, imgrn.QueryParams{
		Gamma: 0.7, Alpha: 0.5, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("candidate biomarker: %d genes, %d inferred interactions\n",
		qs.QueryVertices, qs.QueryEdges)
	fmt.Println("interactions in the query GRN:")
	q, err := eng.InferGraph(queryMatrix, imgrn.QueryParams{Gamma: 0.7, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range q.Edges() {
		fmt.Printf("  %-6s — %-6s  Pr = %.3f\n",
			geneNames[q.Gene(e.S)], geneNames[q.Gene(e.T)], e.P)
	}

	sort.Slice(answers, func(i, j int) bool { return answers[i].Prob > answers[j].Prob })
	tp, fp := 0, 0
	fmt.Printf("\nsupporting evidence (%d cohorts matched, io=%d pages):\n", len(answers), qs.IOCost)
	for _, a := range answers {
		tag := "quiescent"
		if activeSources[a.Source] {
			tag = "known-cancer"
			tp++
		} else {
			fp++
		}
		fmt.Printf("  cohort %-3d  Pr{G} = %.4f  [%s]\n", a.Source, a.Prob, tag)
	}
	fmt.Printf("\nretrieved %d known-cancer cohorts, %d quiescent cohorts\n", tp, fp)
	if tp > 0 && fp == 0 {
		fmt.Println("=> the pattern retrieves exactly the pathway-active cohorts: biomarker confirmed")
	}
}
