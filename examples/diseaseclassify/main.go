// Disease classification (Example 2 of the paper): given a newly emerging
// disease with only partial biological experiments available, infer its
// query GRN and retrieve labelled diseases whose regulatory structures
// match it with high confidence. The new disease is classified by the
// labels of the retrieved matches, suggesting candidate treatments.
//
// Run with: go run ./examples/diseaseclassify
package main

import (
	"fmt"
	"log"
	"math/rand"

	imgrn "github.com/imgrn/imgrn"
)

// Two disease families with distinct regulatory wirings over the shared
// gene panel {0..4}:
//   - "inflammatory": gene 0 drives 1 and 2 (a hub)
//   - "metabolic":    chain 0 → 1 → 3, gene 2 independent
func synthesizeDisease(rng *rand.Rand, src, patients int, family string) (*imgrn.Matrix, error) {
	g0 := make([]float64, patients)
	g1 := make([]float64, patients)
	g2 := make([]float64, patients)
	g3 := make([]float64, patients)
	g4 := make([]float64, patients)
	for i := 0; i < patients; i++ {
		g0[i] = rng.NormFloat64()
		switch family {
		case "inflammatory":
			g1[i] = 0.9*g0[i] + 0.3*rng.NormFloat64()
			g2[i] = 0.9*g0[i] + 0.3*rng.NormFloat64()
			g3[i] = rng.NormFloat64()
		case "metabolic":
			g1[i] = 0.9*g0[i] + 0.3*rng.NormFloat64()
			g3[i] = 0.9*g1[i] + 0.3*rng.NormFloat64()
			g2[i] = rng.NormFloat64()
		}
		g4[i] = rng.NormFloat64()
	}
	return imgrn.NewMatrix(src, []imgrn.GeneID{0, 1, 2, 3, 4},
		[][]float64{g0, g1, g2, g3, g4})
}

func main() {
	rng := rand.New(rand.NewSource(23))

	// Labelled disease database: 20 inflammatory + 20 metabolic cohorts.
	db := imgrn.NewDatabase()
	labels := map[int]string{}
	for src := 0; src < 40; src++ {
		family := "inflammatory"
		if src >= 20 {
			family = "metabolic"
		}
		labels[src] = family
		m, err := synthesizeDisease(rng, src, 25+rng.Intn(10), family)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}

	// A new, unlabelled disease arrives; its (partial) experiments show a
	// metabolic-style chain. Only 12 patients were measured so far.
	unknown, err := synthesizeDisease(rng, -1, 12, "metabolic")
	if err != nil {
		log.Fatal(err)
	}
	// Partial experiments: only genes 0, 1, 3 assayed.
	query, err := unknown.SubMatrix(-1, []int{0, 1, 3})
	if err != nil {
		log.Fatal(err)
	}

	answers, qs, err := eng.Query(query, imgrn.QueryParams{
		Gamma: 0.7, Alpha: 0.5, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	votes := map[string]int{}
	for _, a := range answers {
		votes[labels[a.Source]]++
	}
	fmt.Printf("new disease query: %d genes, %d inferred edges, %d matches (io=%d pages)\n",
		qs.QueryVertices, qs.QueryEdges, len(answers), qs.IOCost)
	fmt.Println("votes by disease family:")
	best, bestVotes := "unclassified", 0
	for family, v := range votes {
		fmt.Printf("  %-13s %d\n", family, v)
		if v > bestVotes {
			best, bestVotes = family, v
		}
	}
	fmt.Printf("=> the new disease classifies as %q; treatments for that family are candidate therapies\n", best)
}
