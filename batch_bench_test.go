package imgrn_test

import (
	"os"
	"testing"

	imgrn "github.com/imgrn/imgrn"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// batchBench is the multi-query workload the batch engine is measured
// on: the ad-hoc exploration pattern batching targets. A client studying
// a pathway rarely sends one query — it probes the full extracted region
// and then narrower variants of it. Here two 8-gene base regions are
// each probed at widths 8, 6, 4 and 2 (B = 8 items, mixed width). The
// variants share anchor and neighbor genes, so their index descents
// overlap — the regime where the batch engine's shared γ-group traversal
// amortizes page touches, heap pops and Lemma-6 bounds across members.
type batchBench struct {
	db      *imgrn.Database
	queries []*gene.Matrix
}

func setupBatchBench(tb testing.TB) *batchBench {
	tb.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 300, NMin: 15, NMax: 30, LMin: 10, LMax: 20,
		Dist: synth.Uniform, GenePool: 40, Seed: 81,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := randgen.New(82)
	bb := &batchBench{db: ds.DB}
	for b := 0; b < 2; b++ {
		base, _, err := ds.ExtractQuery(rng, 8)
		if err != nil {
			tb.Fatal(err)
		}
		for _, nq := range []int{8, 6, 4, 2} {
			// Prefixes of the BFS-ordered extraction stay connected, so
			// every width probes the same region of the base pathway.
			cols := make([]int, nq)
			for j := range cols {
				cols[j] = j
			}
			q, err := base.SubMatrix(-1-len(bb.queries), cols)
			if err != nil {
				tb.Fatal(err)
			}
			bb.queries = append(bb.queries, q)
		}
	}
	return bb
}

func openBatchBench(tb testing.TB, bb *batchBench) *imgrn.Engine {
	tb.Helper()
	eng, err := imgrn.Open(bb.db, imgrn.IndexOptions{
		D: 2, Samples: 24, Seed: 81, Bits: 1024, BufferPages: 1024,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func batchBenchParams(i int) imgrn.QueryParams {
	// Monte Carlo verification under one shared seed — what a batch
	// client sends — so queries probing the same (source, column) can
	// share permutation fills in the SharedPerms mode.
	_ = i
	return imgrn.QueryParams{Gamma: 0.4, Alpha: 0.3, Samples: 48, Seed: 3000}
}

// runBatchBenchSequential answers the workload as B independent queries
// — the baseline a /query client pays today.
func runBatchBenchSequential(tb testing.TB, eng *imgrn.Engine, bb *batchBench) {
	tb.Helper()
	for i, q := range bb.queries {
		if _, _, err := eng.Query(q, batchBenchParams(i)); err != nil {
			tb.Fatal(err)
		}
	}
}

// runBatchBenchBatch answers the same workload as one engine batch.
func runBatchBenchBatch(tb testing.TB, eng *imgrn.Engine, bb *batchBench, shared bool) {
	tb.Helper()
	items := make([]imgrn.BatchItem, len(bb.queries))
	for i, q := range bb.queries {
		items[i] = imgrn.BatchItem{Matrix: q, Params: batchBenchParams(i)}
	}
	results, _ := eng.QueryBatch(items, imgrn.BatchOptions{SharedPerms: shared})
	for i := range results {
		if results[i].Err != nil {
			tb.Fatal(results[i].Err)
		}
	}
}

// BenchmarkBatchQuery compares one B=8 mixed-width workload answered
// three ways (`make bench-batch` -> BENCH_batch.json with the derived
// batch-vs-sequential speedups): as 8 sequential queries, as one batch
// (byte-identical answers, shared γ-group traversals and plan
// resolution), and as one batch with shared permutation fills
// (deterministic, not byte-identical). One ns/op is one whole workload.
func BenchmarkBatchQuery(b *testing.B) {
	bb := setupBatchBench(b)
	b.Run("sequential", func(b *testing.B) {
		eng := openBatchBench(b, bb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBatchBenchSequential(b, eng, bb)
		}
	})
	b.Run("batch", func(b *testing.B) {
		eng := openBatchBench(b, bb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBatchBenchBatch(b, eng, bb, false)
		}
	})
	b.Run("batch_sharedPerms", func(b *testing.B) {
		eng := openBatchBench(b, bb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBatchBenchBatch(b, eng, bb, true)
		}
	})
}

// TestBatchNotSlowerThanSequential is the CI benchmark gate for the
// batch engine (`make bench-batch-smoke`): the B=8 mixed-width batch
// must beat 8 sequential queries by at least 1.25x. The batch pays one
// γ-group index descent and one plan resolution where the sequential
// loop pays eight, so the margin is structural, not noise. Gated behind
// BENCH_BATCH=1 so ordinary `go test` runs never flake on timing.
func TestBatchNotSlowerThanSequential(t *testing.T) {
	if os.Getenv("BENCH_BATCH") != "1" {
		t.Skip("set BENCH_BATCH=1 to run the batch benchmark gate")
	}
	bb := setupBatchBench(t)

	seqEng := openBatchBench(t, bb)
	sequential := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			runBatchBenchSequential(b, seqEng, bb)
		}
	})

	batchEng := openBatchBench(t, bb)
	batch := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			runBatchBenchBatch(b, batchEng, bb, false)
		}
	})

	speedup := float64(sequential.NsPerOp()) / float64(batch.NsPerOp())
	t.Logf("sequential %v ns/op, batch %v ns/op (%.2fx)",
		sequential.NsPerOp(), batch.NsPerOp(), speedup)
	if speedup < 1.25 {
		t.Errorf("batch speedup %.2fx below the 1.25x gate (sequential %v ns/op, batch %v ns/op)",
			speedup, sequential.NsPerOp(), batch.NsPerOp())
	}
}
