package imgrn_test

import (
	"math"
	"path/filepath"
	"testing"

	imgrn "github.com/imgrn/imgrn"
	"github.com/imgrn/imgrn/internal/randgen"
)

// buildPublicFixture assembles a database through the public API only:
// several matrices sharing a planted co-expression module over genes
// {0, 1, 2}, plus unrelated noise genes.
func buildPublicFixture(t *testing.T, n int, seed uint64) *imgrn.Database {
	t.Helper()
	rng := randgen.New(seed)
	db := imgrn.NewDatabase()
	for src := 0; src < n; src++ {
		l := 16 + rng.Intn(8)
		driver := make([]float64, l)
		for i := range driver {
			driver[i] = rng.Gaussian(0, 1)
		}
		mk := func(coef, noise float64) []float64 {
			col := make([]float64, l)
			for i := range col {
				col[i] = coef*driver[i] + rng.Gaussian(0, noise)
			}
			return col
		}
		genes := []imgrn.GeneID{0, 1, 2, imgrn.GeneID(10 + src), imgrn.GeneID(100 + src)}
		cols := [][]float64{
			mk(1, 0.1),  // gene 0: the driver
			mk(1, 0.15), // gene 1: tightly co-expressed
			mk(-1, 0.2), // gene 2: repressed (negative correlation)
			mk(0, 1),    // unrelated
			mk(0, 1),    // unrelated
		}
		m, err := imgrn.NewMatrix(src, genes, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := buildPublicFixture(t, 25, 1)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Database() != db {
		t.Error("Database accessor broken")
	}
	if s := eng.IndexStats(); s.Vectors != 25*5 {
		t.Errorf("index vectors = %d", s.Vectors)
	}
	// Query: the planted module extracted from matrix 3.
	qm, err := db.BySource(3).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	answers, stats, err := eng.Query(qm, imgrn.QueryParams{
		Gamma: 0.6, Alpha: 0.4, Samples: 96, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueryEdges == 0 {
		t.Fatal("planted module should infer edges")
	}
	// Every matrix carries the module, so many answers are expected.
	if len(answers) < 20 {
		t.Errorf("answers = %d, want most of the 25 matrices", len(answers))
	}
	for _, a := range answers {
		if a.Prob <= 0.4 {
			t.Errorf("answer %d below alpha: %v", a.Source, a.Prob)
		}
	}
}

func TestPublicInferGraphAndMatch(t *testing.T) {
	db := buildPublicFixture(t, 3, 2)
	m := db.BySource(0)
	g, err := imgrn.InferGraph(m, imgrn.NewAnalyticScorer(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("planted edges not inferred")
	}
	// Match a wildcard pattern: driver gene connected to anything.
	q := imgrn.NewGraph([]imgrn.GeneID{0, imgrn.WildcardGene})
	q.SetEdge(0, 1, 0.5)
	ms := imgrn.MatchSubgraph(q, g, 0.5)
	if len(ms) < 2 {
		t.Errorf("wildcard matches = %d, want >= 2", len(ms))
	}
}

func TestPublicEngineQueryGraph(t *testing.T) {
	db := buildPublicFixture(t, 10, 3)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 1, Samples: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := imgrn.NewGraph([]imgrn.GeneID{0, 1})
	q.SetEdge(0, 1, 0.9)
	answers, _, err := eng.QueryGraph(q, imgrn.QueryParams{Gamma: 0.6, Alpha: 0.5, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 8 {
		t.Errorf("hand-drawn biomarker matched %d of 10 matrices", len(answers))
	}
}

func TestPublicScorers(t *testing.T) {
	db := buildPublicFixture(t, 1, 4)
	m := db.BySource(0)
	for _, sc := range []imgrn.Scorer{
		imgrn.NewRandomizedScorer(1, 64),
		imgrn.NewCorrelationScorer(),
		imgrn.NewAnalyticScorer(),
		imgrn.NewPartialCorrScorer(1e-2),
		imgrn.NewMutualInfoScorer(0),
	} {
		if err := sc.Prepare(m); err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		p := sc.Score(m, 0, 1)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("%s score = %v", sc.Name(), p)
		}
	}
}

func TestPublicSaveLoad(t *testing.T) {
	db := buildPublicFixture(t, 4, 5)
	path := filepath.Join(t.TempDir(), "db.imgrn")
	if err := imgrn.SaveDatabase(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := imgrn.LoadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("round trip len = %d", got.Len())
	}
}

func TestPublicEngineInferGraph(t *testing.T) {
	db := buildPublicFixture(t, 2, 6)
	eng, err := imgrn.Open(db, imgrn.IndexOptions{D: 1, Samples: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	g, err := eng.InferGraph(db.BySource(1), imgrn.QueryParams{Gamma: 0.7, Samples: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("engine inference lost the planted edge")
	}
}

func TestPublicCatalog(t *testing.T) {
	c := imgrn.NewCatalog()
	id := c.Intern("lexA")
	if c.Name(id) != "lexA" {
		t.Error("catalog round trip failed")
	}
}

func TestPublicCalibratedScorer(t *testing.T) {
	db := buildPublicFixture(t, 1, 30)
	m := db.BySource(0)
	for _, sc := range []imgrn.Scorer{
		imgrn.NewCalibratedScorer("cal|r|", imgrn.AbsPearsonVec, 31, 128),
		imgrn.NewCalibratedScorer("cal-spearman", imgrn.SpearmanVec, 32, 128),
		imgrn.NewCalibratedScorer("cal-MI", imgrn.MutualInfoVec(0), 33, 128),
	} {
		if err := sc.Prepare(m); err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if p := sc.Score(m, 0, 1); p < 0.8 {
			t.Errorf("%s score of planted pair = %v", sc.Name(), p)
		}
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	db := buildPublicFixture(t, 2, 34)
	if _, err := imgrn.Open(db, imgrn.IndexOptions{MaxFill: 2}); err == nil {
		t.Error("bad MaxFill should be rejected")
	}
}
