// Benchmarks regenerating every table/figure of the paper's evaluation
// (Section 6 and Appendices G/H) plus micro-benchmarks of the substrates
// and the ablation studies called out in DESIGN.md. Figure benchmarks run
// the corresponding experiment at a reduced, fixed scale so that
// `go test -bench=.` completes in minutes; the full-scale sweeps are
// produced by `go run ./cmd/imgrn-bench -mode full`.
package imgrn_test

import (
	"fmt"
	"io"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/experiments"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/pivot"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/subiso"
	"github.com/imgrn/imgrn/internal/synth"
)

// benchParams is the fixed reduced scale used by the figure benchmarks.
func benchParams() experiments.Params {
	p := experiments.Fast()
	p.N = 300
	p.Queries = 3
	p.Samples = 48
	p.EmbedSamples = 24
	return p
}

func benchmarkFigure(b *testing.B, name string) {
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, p, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure of the evaluation.
func BenchmarkFig5a(b *testing.B) { benchmarkFigure(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { benchmarkFigure(b, "fig5b") }
func BenchmarkFig6(b *testing.B)  { benchmarkFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchmarkFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchmarkFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchmarkFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchmarkFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchmarkFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchmarkFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchmarkFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchmarkFigure(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchmarkFigure(b, "fig15") }

// --- substrate micro-benchmarks -------------------------------------------

func benchVectors(l int, seed uint64) (xs, xt []float64) {
	rng := randgen.New(seed)
	xs = make([]float64, l)
	xt = make([]float64, l)
	for i := 0; i < l; i++ {
		xs[i] = rng.Gaussian(0, 1)
		xt[i] = 0.4*xs[i] + rng.Gaussian(0, 1)
	}
	return xs, xt
}

func BenchmarkEdgeProbabilityMC(b *testing.B) {
	xs, xt := benchVectors(50, 1)
	m, _ := gene.NewMatrix(0, []gene.ID{0, 1}, [][]float64{xs, xt})
	sc := grn.NewRandomizedScorer(2, stats.DefaultSamples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Score(m, 0, 1)
	}
}

// benchInferMatrix builds an n-gene matrix of length-l columns with a
// shared weak factor, so query-graph inference sees a realistic mix of
// prunable and estimable pairs.
func benchInferMatrix(b *testing.B, n, l int, seed uint64) *gene.Matrix {
	b.Helper()
	rng := randgen.New(seed)
	base := make([]float64, l)
	for i := range base {
		base[i] = rng.Gaussian(0, 1)
	}
	ids := make([]gene.ID, n)
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		ids[j] = gene.ID(j)
		col := make([]float64, l)
		for i := range col {
			col[i] = 0.3*base[i] + rng.Gaussian(0, 1)
		}
		cols[j] = col
	}
	m, err := gene.NewMatrix(0, ids, cols)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkInferPruned is the headline benchmark of the batched inference
// kernel: full query-graph inference (Lemma-3 pruning + Monte Carlo
// estimation) over an n=100, l=50 matrix, scalar path vs batch kernel. The
// batch sub-run reports its speedup over the scalar sub-run.
func BenchmarkInferPruned(b *testing.B) {
	m := benchInferMatrix(b, 100, 50, 26)
	var scalarNsPerOp float64
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"scalar", false}, {"batch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := grn.NewRandomizedScorer(27, stats.DefaultSamples)
				sc.Batch = mode.batch
				pr := grn.NewPruner(28, 16)
				if _, _, err := grn.InferPruned(m, sc, pr, 0.5); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if !mode.batch {
				scalarNsPerOp = nsPerOp
			} else if scalarNsPerOp > 0 {
				b.ReportMetric(scalarNsPerOp/nsPerOp, "speedup")
			}
		})
	}
}

// BenchmarkEdgeProbabilityScalar estimates 64 pairs against one target
// column with the per-pair scalar estimator: the direct baseline for
// BenchmarkEdgeProbabilityBatch (identical work, shared ns/pair metric).
func BenchmarkEdgeProbabilityScalar(b *testing.B) {
	m := benchInferMatrix(b, 65, 50, 29)
	xt := m.StdCol(64)
	est := stats.NewEstimator(30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 64; s++ {
			est.AbsEdgeProbability(m.StdCol(s), xt, stats.DefaultSamples)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/pair")
}

// BenchmarkEdgeProbabilityBatch estimates the same 64 pairs through one
// shared permutation batch and the blocked dot-product kernel.
func BenchmarkEdgeProbabilityBatch(b *testing.B) {
	m := benchInferMatrix(b, 65, 50, 29)
	xt := m.StdCol(64)
	srcs := make([][]float64, 64)
	for s := range srcs {
		srcs[s] = m.StdCol(s)
	}
	dst := make([]float64, len(srcs))
	est := stats.NewEstimator(30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.AbsEdgeProbabilityBatch(dst, srcs, xt, stats.DefaultSamples)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(srcs)), "ns/pair")
}

func BenchmarkEdgeProbabilityAnalytic(b *testing.B) {
	xs, xt := benchVectors(50, 3)
	m, _ := gene.NewMatrix(0, []gene.ID{0, 1}, [][]float64{xs, xt})
	sc := grn.AnalyticScorer{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Score(m, 0, 1)
	}
}

func BenchmarkExpectedPermDistance(b *testing.B) {
	xs, xt := benchVectors(50, 4)
	est := stats.NewEstimator(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.ExpectedPermDistance(xs, xt, 64)
	}
}

func benchDataset(b *testing.B, n int, seed uint64) *synth.Dataset {
	b.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: n, NMin: 20, NMax: 40, LMin: 10, LMax: 20,
		Dist: synth.Uniform, GenePool: 1000, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkIndexBuild(b *testing.B) {
	ds := benchDataset(b, 200, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.Build(ds.DB, index.Options{D: 2, Samples: 24, Seed: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPivotSelection(b *testing.B) {
	ds := benchDataset(b, 1, 7)
	m := ds.DB.Matrix(0)
	rng := randgen.New(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pivot.SelectPivots(m, 2, pivot.DefaultSelection, rng)
	}
}

func BenchmarkPivotEmbed(b *testing.B) {
	ds := benchDataset(b, 1, 9)
	m := ds.DB.Matrix(0)
	est := stats.NewEstimator(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pivot.Embed(m, []int{0, 1}, est, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func benchItems(n, dim int, seed uint64) []rstar.Item {
	rng := randgen.New(seed)
	items := make([]rstar.Item, n)
	for i := range items {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.UniformIn(0, 100)
		}
		items[i] = rstar.Item{Point: p, Ref: uint64(i)}
	}
	return items
}

func BenchmarkRStarInsert(b *testing.B) {
	items := benchItems(2000, 5, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, _ := rstar.NewTree(rstar.Config{Dim: 5})
		for _, it := range items {
			if err := tree.Insert(it); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRStarBulkLoad(b *testing.B) {
	items := benchItems(2000, 5, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, _ := rstar.NewTree(rstar.Config{Dim: 5})
		if err := tree.BulkLoad(items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRStarSearch(b *testing.B) {
	items := benchItems(5000, 5, 13)
	tree, _ := rstar.NewTree(rstar.Config{Dim: 5})
	if err := tree.BulkLoad(items); err != nil {
		b.Fatal(err)
	}
	r := rstar.Rect{
		Min: []float64{10, 10, 10, 10, 10},
		Max: []float64{30, 30, 30, 30, 30},
	}
	var buf []rstar.Item
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tree.Search(r, buf[:0])
	}
}

func BenchmarkSubgraphIsoFastPath(b *testing.B) {
	rng := randgen.New(14)
	ids := make([]gene.ID, 100)
	for i := range ids {
		ids[i] = gene.ID(i) // unique labels: fast path
	}
	data := grn.NewGraph(ids)
	for i := 0; i < 300; i++ {
		s, t := rng.Intn(100), rng.Intn(100)
		if s != t {
			data.SetEdge(s, t, 0.9)
		}
	}
	query := grn.NewGraph([]gene.ID{1, 2, 3})
	query.SetEdge(0, 1, 0.5)
	query.SetEdge(1, 2, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subiso.Find(query, data, subiso.Options{Alpha: 0.1})
	}
}

func BenchmarkSubgraphIsoGeneral(b *testing.B) {
	rng := randgen.New(15)
	ids := make([]gene.ID, 100)
	for i := range ids {
		ids[i] = gene.ID(i % 10) // duplicate labels: general VF2
	}
	data := grn.NewGraph(ids)
	for i := 0; i < 300; i++ {
		s, t := rng.Intn(100), rng.Intn(100)
		if s != t {
			data.SetEdge(s, t, 0.9)
		}
	}
	query := grn.NewGraph([]gene.ID{1, 2, 3})
	query.SetEdge(0, 1, 0.5)
	query.SetEdge(1, 2, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subiso.Find(query, data, subiso.Options{Alpha: 0.1})
	}
}

// --- the Figure-6 triangle as a direct micro-benchmark --------------------

type queryBench struct {
	ds      *synth.Dataset
	idx     *index.Index
	queries []*gene.Matrix
}

func setupQueryBench(b *testing.B, seed uint64) *queryBench {
	b.Helper()
	ds := benchDataset(b, 300, seed)
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 24, Seed: seed, Bits: 1024, BufferPages: 1024})
	if err != nil {
		b.Fatal(err)
	}
	rng := randgen.New(seed ^ 0xabcdef)
	var queries []*gene.Matrix
	for i := 0; i < 5; i++ {
		q, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	return &queryBench{ds: ds, idx: idx, queries: queries}
}

func BenchmarkQueryIMGRN(b *testing.B) {
	qb := setupQueryBench(b, 16)
	proc, err := core.NewProcessor(qb.idx, core.Params{Gamma: 0.5, Alpha: 0.5, Samples: 48, Seed: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := proc.Query(qb.queries[i%len(qb.queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelQuery sweeps the intra-query worker budget over a
// grown Fig. 6 query workload: 8-gene queries (nearly 3x the gene pairs
// of the 5-gene figure queries) at Samples=4096, so Monte Carlo
// estimation — the component the worker pool parallelizes — dominates,
// as in the paper's expensive-query regime, and the work-stealing
// scheduler has enough work units per fan-out to exercise stealing.
// Workers=1 is the exact sequential algorithm; each sub-run reports its
// wall-clock speedup over the workers=1 sub-run (bounded by GOMAXPROCS;
// on a single-CPU host it stays ~1) and allocs/op, which the per-query
// scratch arenas keep nearly flat across the sweep.
func BenchmarkParallelQuery(b *testing.B) {
	qb := setupQueryBench(b, 16)
	rng := randgen.New(16 ^ 0xfeed)
	var queries []*gene.Matrix
	for i := 0; i < 5; i++ {
		q, _, err := qb.ds.ExtractQuery(rng, 8)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	var seqNsPerOp float64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			proc, err := core.NewProcessor(qb.idx, core.Params{
				Gamma: 0.5, Alpha: 0.5, Samples: 4096, Seed: 16, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := proc.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				seqNsPerOp = nsPerOp
			} else if seqNsPerOp > 0 {
				b.ReportMetric(seqNsPerOp/nsPerOp, "speedup")
			}
		})
	}
}

func BenchmarkQueryBaseline(b *testing.B) {
	qb := setupQueryBench(b, 17)
	base, err := core.BuildBaseline(qb.ds.DB, core.Params{Gamma: 0.5, Alpha: 0.5, Seed: 17, Analytic: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := base.Query(qb.queries[i%len(qb.queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryLinearScan(b *testing.B) {
	qb := setupQueryBench(b, 18)
	ls, err := core.NewLinearScan(qb.ds.DB, core.Params{Gamma: 0.5, Alpha: 0.5, Samples: 48, Seed: 18})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ls.Query(qb.queries[i%len(qb.queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §5) ----------------------------------------------

// BenchmarkAblationPruning toggles individual pruning layers of the
// traversal and reports the candidate count and I/O alongside time.
func BenchmarkAblationPruning(b *testing.B) {
	qb := setupQueryBench(b, 19)
	cases := []struct {
		name   string
		params core.Params
	}{
		{"full", core.Params{Gamma: 0.5, Alpha: 0.5, Seed: 19, Analytic: true}},
		{"noLemma6", core.Params{Gamma: 0.5, Alpha: 0.5, Seed: 19, Analytic: true, DisableIndexPruning: true}},
		{"noPPR", core.Params{Gamma: 0.5, Alpha: 0.5, Seed: 19, Analytic: true, DisablePivotPruning: true}},
		{"noSignatures", core.Params{Gamma: 0.5, Alpha: 0.5, Seed: 19, Analytic: true, DisableSignatures: true}},
		{"noGeneRange", core.Params{Gamma: 0.5, Alpha: 0.5, Seed: 19, Analytic: true, DisableGeneRange: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			proc, err := core.NewProcessor(qb.idx, c.params)
			if err != nil {
				b.Fatal(err)
			}
			var cand, io float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := proc.Query(qb.queries[i%len(qb.queries)])
				if err != nil {
					b.Fatal(err)
				}
				cand += float64(st.CandidateGenes)
				io += float64(st.IOCost)
			}
			b.ReportMetric(cand/float64(b.N), "candidates/query")
			b.ReportMetric(io/float64(b.N), "pages/query")
		})
	}
}

// BenchmarkAblationPivotSelection compares the Figure-3 cost-model search
// with uniformly random pivots, reporting the achieved cost T_i.
func BenchmarkAblationPivotSelection(b *testing.B) {
	ds := benchDataset(b, 1, 20)
	m := ds.DB.Matrix(0)
	b.Run("costModel", func(b *testing.B) {
		rng := randgen.New(21)
		var cost float64
		for i := 0; i < b.N; i++ {
			piv := pivot.SelectPivots(m, 2, pivot.DefaultSelection, rng)
			cost += pivot.Cost(m, piv)
		}
		b.ReportMetric(cost/float64(b.N), "T_i")
	})
	b.Run("random", func(b *testing.B) {
		rng := randgen.New(21)
		var cost float64
		for i := 0; i < b.N; i++ {
			piv := rng.SampleWithoutReplacement(m.NumGenes(), 2)
			cost += pivot.Cost(m, piv)
		}
		b.ReportMetric(cost/float64(b.N), "T_i")
	})
}

// BenchmarkAblationSamples sweeps the Monte Carlo budget of the Lemma-2
// estimator and reports the deviation from the exhaustive probability.
func BenchmarkAblationSamples(b *testing.B) {
	rng := randgen.New(22)
	xs := make([]float64, 7)
	xt := make([]float64, 7)
	for i := range xs {
		xs[i] = rng.Gaussian(0, 1)
		xt[i] = 0.5*xs[i] + rng.Gaussian(0, 1)
	}
	m, _ := gene.NewMatrix(0, []gene.ID{0, 1}, [][]float64{xs, xt})
	exact := stats.ExactAbsEdgeProbability(m.StdCol(0), m.StdCol(1))
	for _, s := range []int{16, 64, 256, 1024} {
		b.Run(benchName("S", s), func(b *testing.B) {
			est := stats.NewEstimator(uint64(s))
			var dev float64
			for i := 0; i < b.N; i++ {
				p := est.AbsEdgeProbability(m.StdCol(0), m.StdCol(1), s)
				if p > exact {
					dev += p - exact
				} else {
					dev += exact - p
				}
			}
			b.ReportMetric(dev/float64(b.N), "abs-error")
		})
	}
}

// BenchmarkAblationMatcher pits the unique-label fast path against forcing
// the general VF2 search on the same workload via a wildcard label.
func BenchmarkAblationMatcher(b *testing.B) {
	rng := randgen.New(23)
	ids := make([]gene.ID, 60)
	for i := range ids {
		ids[i] = gene.ID(i)
	}
	data := grn.NewGraph(ids)
	for i := 0; i < 150; i++ {
		s, t := rng.Intn(60), rng.Intn(60)
		if s != t {
			data.SetEdge(s, t, 0.9)
		}
	}
	fast := grn.NewGraph([]gene.ID{1, 2, 3})
	fast.SetEdge(0, 1, 0.5)
	fast.SetEdge(1, 2, 0.5)
	general := grn.NewGraph([]gene.ID{1, 2, subiso.Wildcard})
	general.SetEdge(0, 1, 0.5)
	general.SetEdge(1, 2, 0.5)
	b.Run("fastPath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subiso.Find(fast, data, subiso.Options{})
		}
	})
	b.Run("generalVF2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subiso.Find(general, data, subiso.Options{})
		}
	})
}

func benchName(prefix string, v int) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + digits
}

// BenchmarkAblationGeneLayout quantifies the gene-ID-primary bulk-loading
// layout (the Section-5.1 design point of including the gene dimension):
// the same workload over a gene-clustered index vs a natural STR layout.
func BenchmarkAblationGeneLayout(b *testing.B) {
	ds := benchDataset(b, 300, 24)
	rng := randgen.New(25)
	var queries []*gene.Matrix
	for i := 0; i < 5; i++ {
		q, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	for _, c := range []struct {
		name    string
		natural bool
	}{{"geneClustered", false}, {"naturalSTR", true}} {
		b.Run(c.name, func(b *testing.B) {
			idx, err := index.Build(ds.DB, index.Options{
				D: 2, Samples: 24, Seed: 24, Bits: 1024,
				BufferPages: 1024, NaturalSTRLayout: c.natural,
			})
			if err != nil {
				b.Fatal(err)
			}
			proc, err := core.NewProcessor(idx, core.Params{
				Gamma: 0.5, Alpha: 0.5, Seed: 24, Analytic: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			var io float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := proc.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				io += float64(st.IOCost)
			}
			b.ReportMetric(io/float64(b.N), "pages/query")
		})
	}
}
